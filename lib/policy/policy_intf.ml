(** The contract between the simulated machine and a replacement policy.

    A policy sees the world the way the kernel's reclaim code does: page
    tables with accessed/dirty bits, the frame table / reverse map, and
    memory-pressure watermarks.  It acts through [reclaim_page] (unmap +
    write back + free, performed by the machine) and reports the CPU it
    burned so the machine can charge contention and fault latency.

    Policies expose background work as {!kthread}s — bounded steps the
    machine drives through its processor-sharing CPU model, mirroring how
    kswapd and MG-LRU's aging walker compete with application threads. *)

type env = {
  costs : Mem.Costs.t;
  frames : Mem.Frame_table.t;
  page_table_of : int -> Mem.Page_table.t;
      (** resolve an address-space id *)
  address_spaces : unit -> Mem.Page_table.t list;
      (** every address space, for full page-table walks *)
  rng : Engine.Rng.t;
  now : unit -> int;
  reclaim_page : pfn:int -> unit;
      (** Machine callback: unmap the owning PTE, write back if needed,
          return the frame to the allocator.  The policy must already
          have detached the frame from its own structures. *)
  evictable : pfn:int -> force:bool -> bool;
      (** Cgroup gate, consulted {e before} detaching a candidate.  A
          [false] answer means the frame is off-limits to this reclaim
          pass — outside the targeted cgroup, or protected by
          [memory.low] — and the policy must rotate it back instead of
          calling [reclaim_page].  [force] mirrors the policy's own
          escalation (a pass that freed nothing): it overrides
          [memory.low] protection, never cgroup targeting.  Always
          [true] when cgroups are off, making the check free. *)
  free_count : unit -> int;
  total_frames : int;
  low_watermark : int;
  high_watermark : int;
  obs : Obs.t;
      (** Telemetry sink (often {!Obs.disabled}).  Observation only: a
          policy may emit events and report gauges through it but must
          never branch on it. *)
  prof : Obs.Prof.t;
      (** CPU profiler sink (often {!Obs.Prof.disabled}).  Observation
          only, like [obs]: a policy attributes the work it accrues into
          {!reclaim_stats.cpu_ns} by phase ([Obs.Prof.charge ~phase])
          but must never branch on it. *)
  vmstat : Obs.Vmstat.t;
      (** The machine's vmstat counter registry.  Observation only, like
          [obs]: a policy bumps the counters matching its actions
          ([pgscan_direct]/[pgscan_kswapd], [pgactivate]/[pgdeactivate],
          the [mglru_*] family) but must never read them back into a
          decision. *)
}

type reclaim_stats = {
  mutable freed : int;       (** frames handed back via [reclaim_page] *)
  mutable scanned : int;     (** candidate pages examined *)
  mutable promoted : int;    (** pages saved by their accessed bit *)
  mutable rmap_walks : int;
  mutable pte_scans : int;   (** PTEs examined by linear/spatial scans *)
  mutable cpu_ns : int;      (** compute consumed; the machine adds this
                                 to the faulting thread's latency *)
}

let fresh_stats () =
  { freed = 0; scanned = 0; promoted = 0; rmap_walks = 0; pte_scans = 0; cpu_ns = 0 }

type kstep =
  | Work of int  (** consumed this many ns of CPU; re-step when it elapses *)
  | Sleep of int (** idle; re-step after this many ns *)
  | Sleep_until_woken
      (** idle until the machine signals memory pressure *)

type kthread = {
  kname : string;
  kstep : unit -> kstep;
}

module type S = sig
  type t

  val policy_name : string

  val create : env -> t

  val on_page_mapped :
    t -> pfn:int -> asid:int -> vpn:int -> refault:bool -> file_backed:bool ->
    speculative:bool -> unit
  (** A page was just faulted in and mapped to [pfn].  [refault] means it
      had been evicted before (its contents came from swap);
      [speculative] means readahead brought it in rather than a demand
      access, so it should start its life cold. *)

  val on_page_touched : t -> pfn:int -> write:bool -> unit
  (** Oracle hook invoked on every simulated access.  Hardware-realistic
      policies (Clock, MG-LRU) must ignore it — they only see accessed
      bits; baselines like exact LRU may use it. *)

  val direct_reclaim : t -> want:int -> reclaim_stats
  (** Synchronously free at least one frame whenever any frame is
      evictable, preferring [want].  Called from the allocation slow
      path with memory exhausted. *)

  val kthreads : t -> kthread list
  (** Background workers; the machine schedules their steps. *)

  val stats : t -> (string * int) list

  val gauges : t -> (string * float) list
  (** Instantaneous internal state for the machine-state sampler
      (generation/list occupancy, PID error, ...).  Cheap — called on
      every sampling tick. *)

  val check_invariants : t -> unit
  (** For tests: verify internal structures; raise on corruption. *)
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let packed_name (Packed ((module P), _)) = P.policy_name
