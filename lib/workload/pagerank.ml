type config = {
  graph : Graph.config;
  threads : int;
  iterations : int;
  block_vertices : int;
  cpu_per_edge_ns : int;
  rank_bytes : int;
  edge_bytes : int;
  page_bytes : int;
}

(* Geometry note: ranks + offsets together exceed a 50%-of-footprint
   memory capacity, so the replacement policy has to pick which of the
   zipf-warm rank pages stay resident — those choices, not the CSR
   stream, are PageRank's critical faults (paper §V-B). *)
let default_config =
  {
    graph =
      {
        Graph.n = 1_572_864;
        avg_degree = 3;
        deg_exponent = 0.9;
        target_exponent = 1.2;
      };
    threads = 12;
    iterations = 10;
    block_vertices = 4096;
    cpu_per_edge_ns = 10_000;
    rank_bytes = 8;
    edge_bytes = 4;
    page_bytes = 4096;
  }

(* Per-block access plan, independent of iteration parity. *)
type block_plan = {
  edges : int;
  csr_start : int;   (* first neighbour page (absolute) *)
  csr_len : int;
  meta_pages : int array; (* offset-array pages of this block (absolute) *)
  rank_reads : int array; (* rank pages gathered, relative to a rank base *)
  dst_start : int;   (* first destination rank page, relative *)
  dst_len : int;
}

type plan = {
  graph : Graph.t;
  blocks : block_plan array;
  offsets_pages : int;
  neighbor_pages : int;
  rank_pages : int;
}

type t = {
  config : config;
  plan : plan;
  script : Script.t;
  footprint : int;
  rank_a_base : int;
  rank_b_base : int;
}

let workload_name = "pagerank"

(* The plan cache is shared across the parallel trial engine's domains:
   plans are immutable once built, so only the table itself needs the
   lock.  A missed plan is built outside the lock — two domains may
   build the same plan once each, but the build is deterministic and the
   first insert wins. *)
let plan_cache : (config * int, plan) Hashtbl.t = Hashtbl.create 8

let plan_cache_mu = Mutex.create ()

let build_plan (config : config) seed =
  let graph = Graph.generate ~config:config.graph ~seed () in
  let n = Graph.n graph in
  let pb = config.page_bytes in
  let offsets_pages = ((n + 1) * config.rank_bytes / pb) + 1 in
  let neighbor_pages = (Graph.m graph * config.edge_bytes / pb) + 1 in
  let rank_pages = (n * config.rank_bytes / pb) + 1 in
  let offsets_base = 0 in
  let neighbors_base = offsets_pages in
  let bv = config.block_vertices in
  let nblocks = (n + bv - 1) / bv in
  let ranks_per_page = pb / config.rank_bytes in
  let edges_per_page = pb / config.edge_bytes in
  let blocks =
    Array.init nblocks (fun b ->
        let v_lo = b * bv in
        let v_hi = min n (v_lo + bv) - 1 in
        let e_lo = Graph.offset graph v_lo in
        let e_hi = Graph.offset graph (v_hi + 1) in
        let touched = Array.make rank_pages false in
        for v = v_lo to v_hi do
          Graph.iter_in_neighbors graph v (fun u -> touched.(u / ranks_per_page) <- true)
        done;
        let count = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 touched in
        let rank_reads = Array.make count 0 in
        let k = ref 0 in
        Array.iteri
          (fun p yes ->
            if yes then begin
              rank_reads.(!k) <- p;
              incr k
            end)
          touched;
        let meta_lo = offsets_base + (v_lo / ranks_per_page) in
        let meta_hi = offsets_base + (v_hi / ranks_per_page) in
        {
          edges = e_hi - e_lo;
          csr_start = neighbors_base + (e_lo / edges_per_page);
          csr_len = (e_hi / edges_per_page) - (e_lo / edges_per_page) + 1;
          meta_pages = Array.init (meta_hi - meta_lo + 1) (fun i -> meta_lo + i);
          rank_reads;
          dst_start = v_lo / ranks_per_page;
          dst_len = (v_hi / ranks_per_page) - (v_lo / ranks_per_page) + 1;
        })
  in
  { graph; blocks; offsets_pages; neighbor_pages; rank_pages }

let plan_for config seed =
  let cached =
    Mutex.lock plan_cache_mu;
    let p = Hashtbl.find_opt plan_cache (config, seed) in
    Mutex.unlock plan_cache_mu;
    p
  in
  match cached with
  | Some plan -> plan
  | None ->
    let plan = build_plan config seed in
    Mutex.lock plan_cache_mu;
    let plan =
      match Hashtbl.find_opt plan_cache (config, seed) with
      | Some winner -> winner
      | None ->
        (* Keep the cache bounded: trials reuse a small set of seeds. *)
        if Hashtbl.length plan_cache > 64 then Hashtbl.reset plan_cache;
        Hashtbl.add plan_cache (config, seed) plan;
        plan
    in
    Mutex.unlock plan_cache_mu;
    plan

let block_steps config plan ~rank_src_base ~rank_dst_base b =
  let bp = plan.blocks.(b) in
  let cpu_half = max 1 (bp.edges * config.cpu_per_edge_ns / 2) in
  let gather =
    Array.append bp.meta_pages
      (Array.map (fun p -> rank_src_base + p) bp.rank_reads)
  in
  [
    Chunk.Chunk
      (Chunk.chunk ~cpu_ns:cpu_half
         (Chunk.Range { start = bp.csr_start; len = bp.csr_len; stride = 1 }));
    Chunk.Chunk (Chunk.chunk ~cpu_ns:cpu_half (Chunk.Pages gather));
    Chunk.Chunk
      (Chunk.chunk ~write:true ~cpu_ns:(max 1 (cpu_half / 8))
         (Chunk.Range
            { start = rank_dst_base + bp.dst_start; len = bp.dst_len; stride = 1 }));
  ]

let create ?(config = default_config) ~seed () =
  let plan = plan_for config seed in
  let nblocks = Array.length plan.blocks in
  let rank_a_base = plan.offsets_pages + plan.neighbor_pages in
  let rank_b_base = rank_a_base + plan.rank_pages in
  let footprint = rank_b_base + plan.rank_pages in
  let threads = config.threads in
  let steps =
    Array.init threads (fun tid ->
        let acc = ref [] in
        for iter = 0 to config.iterations - 1 do
          let src, dst =
            if iter mod 2 = 0 then (rank_a_base, rank_b_base)
            else (rank_b_base, rank_a_base)
          in
          (* Static contiguous block ranges, like an OpenMP static
             schedule: whichever thread drew the permuted hubs carries
             visibly more edges this trial. *)
          let lo = tid * nblocks / threads in
          let hi = ((tid + 1) * nblocks / threads) - 1 in
          for b = lo to hi do
            acc :=
              List.rev_append
                (block_steps config plan ~rank_src_base:src ~rank_dst_base:dst b)
                !acc
          done;
          acc := Chunk.Barrier :: !acc
        done;
        Array.of_list (List.rev !acc))
  in
  {
    config;
    plan;
    script = Script.create steps;
    footprint;
    rank_a_base;
    rank_b_base;
  }

let threads t = t.config.threads

let footprint_pages t = t.footprint

let page_klass t page =
  if page < t.rank_a_base then Swapdev.Compress.Graph_csr else Swapdev.Compress.Numeric

let file_backed _t _page = false

let next t ~tid = Script.next t.script ~tid

let graph_of t = t.plan.graph

let rank_pages t = t.plan.rank_pages
