type t = {
  n : int;
  exponent : float;
  h_integral_x1 : float;
  h_integral_n : float;
  s : float;
  norm : float; (* normalization for [probability] *)
}

(* H(x) = integral of 1/t^e from 1 to x, shifted per Hörmann's paper. *)
let h_integral ~e x =
  let log_x = log x in
  if Float.abs (e -. 1.0) < 1e-12 then log_x
  else begin
    let t = (1.0 -. e) *. log_x in
    (* expm1(t) / (1 - e) *)
    Float.expm1 t /. (1.0 -. e)
  end

let h ~e x = exp (-.e *. log x)

let h_integral_inverse ~e x =
  if Float.abs (e -. 1.0) < 1e-12 then exp x
  else begin
    let t = x *. (1.0 -. e) in
    (* Clamp to keep log1p's argument > -1 under rounding. *)
    let t = Float.max t (-1.0 +. 1e-15) in
    exp (Float.log1p t /. (1.0 -. e))
  end

let create ~n ~exponent =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if exponent <= 0.0 then invalid_arg "Zipf.create: exponent must be positive";
  let e = exponent in
  let h_integral_x1 = h_integral ~e 1.5 -. 1.0 in
  let h_integral_n = h_integral ~e (float_of_int n +. 0.5) in
  let s = 2.0 -. h_integral_inverse ~e (h_integral ~e 2.5 -. h ~e 2.0) in
  (* Eager: a [t] can be shared across domains through the PageRank plan
     cache, so there must be no mutation after [create]. *)
  let norm = ref 0.0 in
  for i = 1 to n do
    norm := !norm +. (1.0 /. (float_of_int i ** exponent))
  done;
  { n; exponent; h_integral_x1; h_integral_n; s; norm = !norm }

let n t = t.n

let exponent t = t.exponent

let sample t rng =
  let e = t.exponent in
  let rec draw () =
    let u =
      t.h_integral_n
      +. (Engine.Rng.float rng 1.0 *. (t.h_integral_x1 -. t.h_integral_n))
    in
    let x = h_integral_inverse ~e u in
    let k = Float.max 1.0 (Float.min (float_of_int t.n) (Float.round x)) in
    if
      k -. x <= t.s
      || u >= h_integral ~e (k +. 0.5) -. h ~e k
    then int_of_float k - 1
    else draw ()
  in
  draw ()

let probability t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.probability: rank out of range";
  1.0 /. ((float_of_int (k + 1) ** t.exponent) *. t.norm)
