(** Zipfian sampling in O(1) per draw.

    YCSB generates keys from a zipfian distribution (exponent ~0.99 over
    the item population); PageRank hub structure and TPC-H probe skew
    also use this sampler.  Implementation: Hörmann's
    rejection-inversion, the same algorithm behind Apache Commons'
    [RejectionInversionZipfSampler] — no per-element tables, constant
    expected time per sample. *)

type t

val create : n:int -> exponent:float -> t
(** Distribution over ranks [0 .. n-1] where rank [k] has probability
    proportional to [1 / (k+1)^exponent].
    @raise Invalid_argument when [n <= 0] or [exponent <= 0]. *)

val n : t -> int

val exponent : t -> float

val sample : t -> Engine.Rng.t -> int
(** A rank in [0, n), 0 being the hottest. *)

val probability : t -> int -> float
(** Exact probability of a rank.  The O(n) normalization is computed
    once in {!create}, so [t] is immutable and safe to share across
    domains. *)
