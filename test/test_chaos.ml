module C = Repro_core.Chaos
module I = Repro_core.Invariants
module M = Repro_core.Machine
module F = Repro_core.Fuzz
module SM = Swapdev.Swap_manager

(* ------------------------------------------------------------------ *)
(* Spec grammar: qcheck round-trip over well-formed specs              *)
(* ------------------------------------------------------------------ *)

(* Injector [i] lives entirely inside its own 10ms decade, so same-class
   windows can never overlap and same-time churn pairs cannot occur —
   every generated spec is valid by construction. *)
let ms = 1_000_000

let gen_amount =
  QCheck.Gen.(
    oneof
      [
        map (fun p -> C.Pages p) (1 -- 500);
        map (fun k -> C.Frac (float_of_int k /. 100.0)) (1 -- 99);
      ])

let gen_prob = QCheck.Gen.(map (fun k -> float_of_int k /. 100.0) (1 -- 99))

let gen_injector ~last i =
  let open QCheck.Gen in
  let* a = 1 -- 4 in
  let* d = 1 -- 4 in
  let at = ((10 * i) + a) * ms in
  let dur = d * ms in
  let gen_hotplug =
    let* shrink = gen_amount in
    (* A hotplug without restore= holds its window open to the end of
       time, so it is only valid as the final segment. *)
    let* restore =
      if last then oneof [ return None; return (Some (at + dur)) ]
      else return (Some (at + dur))
    in
    return (C.Hotplug { h_at = at; h_shrink = shrink; h_restore = restore })
  in
  let gen_degrade =
    (* At least one knob must be non-neutral or the rendering drops
       every field and the parser rejects it. *)
    let* lat = oneof [ return 1.0; map float_of_int (2 -- 16) ] in
    let* errs = if lat = 1.0 then gen_prob else oneof [ return 0.0; gen_prob ] in
    let* wear = oneof [ return 0.0; gen_prob ] in
    return
      (C.Degrade
         { d_at = at; d_for = dur; d_latency = lat; d_errors = errs; d_wear = wear })
  in
  let gen_churn =
    let* cg = oneofl [ "app"; "db"; "bg" ] in
    let* low = oneof [ return None; map Option.some gen_amount ] in
    let* high = oneof [ return None; map Option.some gen_amount ] in
    let* max_ =
      if low = None && high = None then map Option.some gen_amount
      else oneof [ return None; map Option.some gen_amount ]
    in
    return (C.Churn { c_at = at; c_cg = cg; c_low = low; c_high = high; c_max = max_ })
  in
  let gen_burst =
    let* threads =
      oneofl [ []; [ (0, 0) ]; [ (0, 1) ]; [ (1, 3) ]; [ (0, 0); (2, 3) ] ]
    in
    return (C.Burst { b_at = at; b_for = dur; b_threads = threads })
  in
  oneof [ gen_hotplug; gen_degrade; gen_churn; gen_burst; return (C.Corrupt { x_at = at }) ]

let gen_spec =
  QCheck.Gen.(
    let* n = 1 -- 4 in
    let* injs = flatten_l (List.init n (fun i -> gen_injector ~last:(i = n - 1) i)) in
    return { C.injectors = injs })

let arb_spec =
  QCheck.make ~print:(fun s -> C.spec_to_string s) gen_spec

let qcheck_round_trip =
  QCheck.Test.make ~count:500 ~name:"spec_to_string round-trips through parse_spec"
    arb_spec (fun spec ->
      match C.parse_spec (C.spec_to_string spec) with
      | Ok spec' -> spec' = spec
      | Error e -> QCheck.Test.fail_reportf "rejected %S: %s" (C.spec_to_string spec) e)

let qcheck_canonical =
  QCheck.Test.make ~count:500 ~name:"spec_to_string is a fixpoint of parse_spec"
    arb_spec (fun spec ->
      let s = C.spec_to_string spec in
      match C.parse_spec s with
      | Ok spec' -> C.spec_to_string spec' = s
      | Error e -> QCheck.Test.fail_reportf "rejected %S: %s" s e)

(* ------------------------------------------------------------------ *)
(* Rejection: exact line-and-column diagnostics                        *)
(* ------------------------------------------------------------------ *)

let rejects spec want () =
  match C.parse_spec spec with
  | Ok s ->
    Alcotest.failf "parse_spec %S accepted as %S" spec (C.spec_to_string s)
  | Error got -> Alcotest.(check string) spec want got

let rejection_cases =
  [
    ("hotplug:at=-5ms,shrink=10", "1:12: at: negative time \"-5ms\"");
    ("hotplug:at=zzz,shrink=10", "1:12: at: bad time \"zzz\"");
    ("hotplug:at=1ms,shrink=0", "1:23: shrink: must offline at least one frame");
    ( "hotplug:at=1ms,shrink=120%",
      "1:23: shrink: cannot offline all of memory (want < 100%)" );
    ("hotplug:at=5ms,shrink=10,restore=2ms", "1:34: restore: must be after at=");
    ("hotplug:at=1ms,shrink=10,bogus=3", "1:1: hotplug: unknown key \"bogus\"");
    ("hotplug:shrink=10", "1:1: hotplug: missing at=");
    ("degrade:at=1ms,for=0,latency=2x", "1:20: for: must be positive");
    ( "degrade:at=1ms,for=2ms",
      "1:1: degrade: needs at least one of latency=, errors=, wear=" );
    ( "degrade:at=1ms,for=2ms,latency=0.5x",
      "1:32: latency: bad multiplier \"0.5x\" (want >=1x)" );
    ( "degrade:at=1ms,for=2ms,latency=8",
      "1:32: latency: bad multiplier \"8\" (want e.g. 8x)" );
    ( "degrade:at=1ms,for=2ms,errors=1.5",
      "1:31: errors: bad probability \"1.5\" (want 0..1)" );
    ("churn:at=1ms,cg=app", "1:1: churn: needs at least one of low=, high=, max=");
    ( "churn:at=1ms,cg=bad name,max=50%",
      "1:17: cg: bad cgroup name \"bad name\"" );
    ("burst:at=1ms,for=2ms,threads=3-1", "1:30: threads: bad thread range \"3-1\"");
    ("corrupt:at=1ms,extra=1", "1:1: corrupt: unknown key \"extra\"");
    ("", "1:1: empty --chaos spec");
    ("frobnicate:at=1ms", "1:1: unknown injector \"frobnicate\"");
    ( "hotplug:at=1ms,shrink=10,restore=5ms;hotplug:at=2ms,shrink=5,restore=3ms",
      "1:38: hotplug: window overlaps an earlier hotplug window" );
    ( "degrade:at=1ms,for=10ms,latency=2x;degrade:at=5ms,for=2ms,errors=0.1",
      "1:36: degrade: window overlaps an earlier degrade window" );
    ( "burst:at=1ms,for=10ms,threads=0-1;burst:at=5ms,for=2ms,threads=1-2",
      "1:35: burst: window overlaps an earlier burst window" );
    ( "churn:at=1ms,cg=app,max=50%;churn:at=1ms,cg=app,max=10",
      "1:29: churn: duplicate update of the same cgroup at the same time" );
  ]

let test_accepts_disjoint_bursts () =
  (* Same class, overlapping windows, but disjoint thread sets: legal. *)
  match C.parse_spec "burst:at=1ms,for=10ms,threads=0-1;burst:at=5ms,for=2ms,threads=2-3" with
  | Ok s -> Alcotest.(check int) "two injectors" 2 (List.length s.C.injectors)
  | Error e -> Alcotest.failf "rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Invariants: hotplug audits                                          *)
(* ------------------------------------------------------------------ *)

type world = {
  pt : Mem.Page_table.t;
  frames : Mem.Frame_table.t;
  mem : Mem.Phys_mem.t;
  swap : SM.t;
  retained : int array;
}

let pages = 32

let make_world () =
  let dev = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  {
    pt = Mem.Page_table.create ~region_size:8 ~asid:0 ~pages ();
    frames = Mem.Frame_table.create ~frames:8;
    mem = Mem.Phys_mem.create ~frames:8 ();
    swap = SM.create ~device:dev ~seed:5 ();
    retained = Array.make pages (-1);
  }

let audit ?last_chaos w =
  I.audit ~last_chaos ~memcg:None ~owners:None ~pt:w.pt ~frames:w.frames
    ~mem:w.mem ~swap:w.swap ~retained_slot:w.retained

let map w ~vpn =
  match Mem.Phys_mem.alloc w.mem with
  | None -> Alcotest.fail "out of frames in test setup"
  | Some pfn ->
    Mem.Frame_table.set_owner w.frames ~pfn ~asid:0 ~vpn;
    Mem.Page_table.set w.pt vpn (Mem.Pte.mapped ~pfn ~file_backed:false);
    pfn

let checks violations = List.map (fun v -> v.I.check) violations

let test_offline_free_frame_clean () =
  let w = make_world () in
  let _pfn = map w ~vpn:3 in
  (* Offlining a *free* frame keeps every account balanced. *)
  (match Mem.Phys_mem.alloc w.mem with
  | None -> Alcotest.fail "out of frames"
  | Some pfn ->
    Mem.Phys_mem.free w.mem pfn;
    Mem.Phys_mem.offline_free w.mem pfn);
  Alcotest.(check (list string)) "no violations" [] (checks (audit w))

let test_detects_pte_on_offline_frame () =
  let w = make_world () in
  let pfn = map w ~vpn:4 in
  (* Offline a frame that is still mapped: the PTE check, the per-frame
     check, and the hotplug scan must all fire. *)
  Mem.Phys_mem.offline_used w.mem pfn;
  let cs = checks (audit w) in
  Alcotest.(check bool) "pte-offline-frame" true (List.mem "pte-offline-frame" cs);
  Alcotest.(check bool) "frame-offline" true (List.mem "frame-offline" cs);
  Alcotest.(check bool) "hotplug-offline-mapped" true
    (List.mem "hotplug-offline-mapped" cs)

let test_detects_online_count_balance () =
  let w = make_world () in
  (* Allocate-then-leak against a shrunk population: used+free must
     still equal the online count, and the scan must agree. *)
  (match Mem.Phys_mem.alloc w.mem with
  | None -> Alcotest.fail "out of frames"
  | Some pfn ->
    Mem.Phys_mem.free w.mem pfn;
    Mem.Phys_mem.offline_free w.mem pfn);
  Alcotest.(check int) "online count shrank" 7 (Mem.Phys_mem.online_count w.mem);
  Alcotest.(check (list string)) "still balanced" [] (checks (audit w))

let test_last_chaos_stamped () =
  let w = make_world () in
  let pfn = map w ~vpn:2 in
  Mem.Phys_mem.offline_used w.mem pfn;
  let vs = audit ~last_chaos:"hotplug: offline 3 frames" w in
  Alcotest.(check bool) "violations found" true (vs <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool) "detail names the trigger" true
        (let needle = "last chaos: hotplug: offline 3 frames" in
         let n = String.length needle and h = String.length v.I.detail in
         let rec scan i = i + n <= h && (String.sub v.I.detail i n = needle || scan (i + 1)) in
         scan 0))
    vs

(* ------------------------------------------------------------------ *)
(* Machine-level: each injector class end-to-end                       *)
(* ------------------------------------------------------------------ *)

let mk_trace_workload () =
  let lists =
    List.init 4 (fun t ->
        Array.init 512 (fun i -> ((i * (t + 3)) + (t * 61)) mod 256))
  in
  Workload.Trace.of_page_lists ~footprint:256 lists

let base_cfg ?(obs = Obs.off) ?cgroups ?chaos () =
  {
    (M.default_config ~capacity_frames:64 ~seed:11) with
    M.kthread_jitter_ns = 0;
    audit_every_ns = 1_000_000;
    obs;
    cgroups;
    chaos;
  }

let run_cfg cfg =
  M.run cfg
    ~policy:(Policy.Registry.create Policy.Registry.Mglru_default)
    ~workload:(Workload.Chunk.Packed ((module Workload.Trace), mk_trace_workload ()))

let baseline = lazy (run_cfg (base_cfg ()))

let window () =
  (* Put the transient window well inside the calibrated runtime. *)
  let r = (Lazy.force baseline).M.runtime_ns in
  (r / 4, max 1 (r / 4))

let summary_of r =
  match r.M.chaos with
  | Some s -> s
  | None -> Alcotest.fail "chaos summary missing on a chaos run"

let test_machine_hotplug () =
  let at, dur = window () in
  let spec =
    { C.injectors =
        [ C.Hotplug { h_at = at; h_shrink = C.Frac 0.4; h_restore = Some (at + dur) } ] }
  in
  let r = run_cfg (base_cfg ~chaos:spec ()) in
  let s = summary_of r in
  Alcotest.(check bool) "events fired" true (s.C.s_events >= 2);
  Alcotest.(check bool) "frames offlined" true (s.C.s_offlined > 0);
  Alcotest.(check int) "all back online" s.C.s_offlined s.C.s_onlined;
  Alcotest.(check int) "audits clean" 0 r.M.invariant_violations

let test_machine_degrade () =
  let at, dur = window () in
  let spec =
    { C.injectors =
        [ C.Degrade
            { d_at = at; d_for = dur; d_latency = 4.0; d_errors = 0.0; d_wear = 0.0 } ] }
  in
  let r = run_cfg (base_cfg ~chaos:spec ()) in
  let s = summary_of r in
  Alcotest.(check int) "one degraded phase" 1 s.C.s_device_phases;
  Alcotest.(check int) "set and clear both fired" 2 s.C.s_events;
  Alcotest.(check int) "audits clean" 0 r.M.invariant_violations;
  let b = Lazy.force baseline in
  Alcotest.(check bool) "degradation costs simulated time" true
    (r.M.runtime_ns >= b.M.runtime_ns)

let test_machine_churn () =
  let at, dur = window () in
  let cgroups : Mem.Memcg.spec =
    {
      groups =
        [ { Mem.Memcg.g_name = "app"; g_threads = [ (0, 0) ];
            g_low = None; g_high = None; g_max = None } ];
      proactive = None;
      psi_interval_ns = 100_000_000;
    }
  in
  let spec =
    { C.injectors =
        [ C.Churn { c_at = at; c_cg = "app"; c_low = None; c_high = None;
                    c_max = Some (C.Frac 0.5) };
          C.Churn { c_at = at + dur; c_cg = "app"; c_low = None; c_high = None;
                    c_max = Some (C.Frac 1.0) } ] }
  in
  let r = run_cfg (base_cfg ~cgroups ~chaos:spec ()) in
  let s = summary_of r in
  Alcotest.(check int) "two limit rewrites" 2 s.C.s_limit_updates;
  Alcotest.(check int) "audits clean" 0 r.M.invariant_violations

let test_machine_burst () =
  let at, dur = window () in
  let spec =
    (* threads= omitted: stall every thread of the (single-threaded)
       trace script. *)
    { C.injectors = [ C.Burst { b_at = at; b_for = dur; b_threads = [] } ] }
  in
  let r = run_cfg (base_cfg ~chaos:spec ()) in
  let s = summary_of r in
  Alcotest.(check int) "the thread stalled" 1 s.C.s_stalled_threads;
  Alcotest.(check int) "audits clean" 0 r.M.invariant_violations

let test_machine_corrupt_detected () =
  let at, _ = window () in
  let spec = { C.injectors = [ C.Corrupt { x_at = at } ] } in
  let r = run_cfg (base_cfg ~chaos:spec ()) in
  let s = summary_of r in
  Alcotest.(check int) "one frame corrupted" 1 s.C.s_corrupted;
  Alcotest.(check bool) "forced audit caught it" true (r.M.invariant_violations > 0)

let test_machine_chaos_traced () =
  let at, dur = window () in
  let spec =
    { C.injectors =
        [ C.Hotplug { h_at = at; h_shrink = C.Frac 0.3; h_restore = Some (at + dur) } ] }
  in
  let obs = { Obs.trace = true; sample_every_ns = 0 } in
  let r = run_cfg (base_cfg ~obs ~chaos:spec ()) in
  match r.M.trace with
  | None -> Alcotest.fail "trace capture missing"
  | Some cap ->
    let chaos_evs =
      Array.to_list cap.Obs.events
      |> List.filter_map (fun (_, ev) ->
             match ev with
             | Obs.Chaos { injector; _ } -> Some injector
             | _ -> None)
    in
    Alcotest.(check bool) "hotplug events in trace" true
      (List.mem "hotplug" chaos_evs)

let test_machine_future_chaos_inert () =
  (* A schedule entirely past the end of the run must not perturb the
     simulation: every behavioural field matches the chaos-free run. *)
  let b = Lazy.force baseline in
  let far = (b.M.runtime_ns * 10) + 1 in
  let spec =
    { C.injectors = [ C.Burst { b_at = far; b_for = ms; b_threads = [] } ] }
  in
  let r = run_cfg (base_cfg ~chaos:spec ()) in
  Alcotest.(check int) "runtime" b.M.runtime_ns r.M.runtime_ns;
  Alcotest.(check int) "major faults" b.M.major_faults r.M.major_faults;
  Alcotest.(check int) "minor faults" b.M.minor_faults r.M.minor_faults;
  Alcotest.(check int) "swap ins" b.M.swap_ins r.M.swap_ins;
  Alcotest.(check int) "swap outs" b.M.swap_outs r.M.swap_outs;
  Alcotest.(check int) "oom kills" b.M.oom_kills r.M.oom_kills;
  Alcotest.(check (array (float 0.0))) "read latencies"
    b.M.read_latencies r.M.read_latencies;
  Alcotest.(check int) "no events fired" 0 (summary_of r).C.s_events

(* ------------------------------------------------------------------ *)
(* Fuzz driver: config codec, oracle, shrink                           *)
(* ------------------------------------------------------------------ *)

let cfg_of s =
  match F.config_of_string s with
  | Ok c -> c
  | Error e -> Alcotest.failf "config %S rejected: %s" s e

let test_fuzz_config_round_trip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (F.config_to_string (cfg_of s)))
    [
      "w=tpch p=clock r=0.5 s=ssd f=none";
      "w=pagerank p=mglru r=0.9 s=zram f=light";
      "w=tpch p=clock r=0.5 s=ssd f=none cg=app:threads=0-1,max=50%";
      "w=tpch p=clock r=0.5 s=ssd f=none ch=corrupt:at=1s";
      "w=tpch p=clock r=0.75 s=ssd f=none cg=app:threads=0-1,max=50% \
       ch=degrade:at=5ms,for=2ms,latency=4x";
    ]

let test_fuzz_config_rejects () =
  List.iter
    (fun s ->
      match F.config_of_string s with
      | Ok _ -> Alcotest.failf "config %S accepted" s
      | Error _ -> ())
    [
      "w=tpch extra";
      "w=nosuch p=clock r=0.5 s=ssd f=none";
      "w=tpch p=nosuch r=0.5 s=ssd f=none";
      "w=tpch p=clock r=-1 s=ssd f=none";
      "w=tpch p=clock r=0.5 s=floppy f=none";
      "w=tpch p=clock r=0.5 s=ssd f=none ch=hotplug:at=1ms";
    ]

let test_fuzz_clean_config_passes () =
  Alcotest.(check bool) "no failure" true
    (F.check (cfg_of "w=tpch p=clock r=0.5 s=ssd f=none") = None)

let test_fuzz_corrupt_fails_invariants () =
  match F.check (cfg_of "w=tpch p=clock r=0.5 s=ssd f=none ch=corrupt:at=1s") with
  | Some ("invariants", _) -> ()
  | Some (oracle, detail) -> Alcotest.failf "wrong oracle %s: %s" oracle detail
  | None -> Alcotest.fail "corrupt config passed every oracle"

let test_fuzz_shrink_to_minimal () =
  let big =
    cfg_of
      "w=tpch p=clock r=0.9 s=ssd f=none \
       ch=burst:at=5ms,for=2ms;corrupt:at=1s"
  in
  (match F.check big with
  | Some ("invariants", _) -> ()
  | _ -> Alcotest.fail "seeded config must fail the invariants oracle");
  let small = F.shrink big ~failing:"invariants" in
  Alcotest.(check string) "minimal repro"
    "w=tpch p=clock r=0.5 s=ssd f=none ch=corrupt:at=1s"
    (F.config_to_string small);
  (* The minimal line reproduces deterministically. *)
  match F.check small with
  | Some ("invariants", _) -> ()
  | _ -> Alcotest.fail "shrunken config no longer fails invariants"

let () =
  Alcotest.run "chaos"
    [
      ( "grammar",
        QCheck_alcotest.to_alcotest qcheck_round_trip
        :: QCheck_alcotest.to_alcotest qcheck_canonical
        :: Alcotest.test_case "disjoint bursts accepted" `Quick
             test_accepts_disjoint_bursts
        :: List.map
             (fun (spec, want) ->
               Alcotest.test_case
                 (if spec = "" then "<empty>" else spec)
                 `Quick (rejects spec want))
             rejection_cases );
      ( "invariants",
        [
          Alcotest.test_case "offline free frame clean" `Quick
            test_offline_free_frame_clean;
          Alcotest.test_case "pte on offline frame" `Quick
            test_detects_pte_on_offline_frame;
          Alcotest.test_case "online count balance" `Quick
            test_detects_online_count_balance;
          Alcotest.test_case "last chaos stamped" `Quick test_last_chaos_stamped;
        ] );
      ( "machine",
        [
          Alcotest.test_case "hotplug" `Quick test_machine_hotplug;
          Alcotest.test_case "degrade" `Quick test_machine_degrade;
          Alcotest.test_case "churn" `Quick test_machine_churn;
          Alcotest.test_case "burst" `Quick test_machine_burst;
          Alcotest.test_case "corrupt detected" `Quick test_machine_corrupt_detected;
          Alcotest.test_case "chaos in trace" `Quick test_machine_chaos_traced;
          Alcotest.test_case "future chaos inert" `Quick
            test_machine_future_chaos_inert;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "config round-trip" `Quick test_fuzz_config_round_trip;
          Alcotest.test_case "config rejects" `Quick test_fuzz_config_rejects;
          Alcotest.test_case "clean config passes" `Quick
            test_fuzz_clean_config_passes;
          Alcotest.test_case "corrupt fails invariants" `Quick
            test_fuzz_corrupt_fails_invariants;
          Alcotest.test_case "shrink to minimal" `Slow test_fuzz_shrink_to_minimal;
        ] );
    ]
