module D = Swapdev.Device
module F = Swapdev.Faulty_device

let inner () =
  let config = { Swapdev.Zram.default_config with Swapdev.Zram.jitter = 0.0 } in
  Swapdev.Zram.create ~config ~rng:(Engine.Rng.create 3) ()

let wrap ?(seed = 42) plan =
  F.wrap ~plan ~rng:(Engine.Rng.create seed) (inner ())

let drive dev n =
  List.init n (fun i ->
      let op = if i mod 3 = 0 then D.Write else D.Read in
      dev.D.submit ~now:(i * 50_000) ~op ~size_fraction:0.5)

let test_none_injects_nothing () =
  Alcotest.(check bool) "none is none" true (F.is_none F.none);
  Alcotest.(check bool) "light is not" false (F.is_none F.light);
  Alcotest.(check bool) "heavy is not" false (F.is_none F.heavy);
  let dev, counters = wrap F.none in
  let plain = inner () in
  List.iter2
    (fun c p ->
      Alcotest.(check bool) "status ok" true (D.ok c);
      Alcotest.(check int) "timing untouched" p.D.finish_ns c.D.finish_ns)
    (drive dev 200) (drive plain 200);
  Alcotest.(check int) "no injections" 0 (F.injected counters)

let test_deterministic_replay () =
  let summarize c =
    ( c.D.finish_ns,
      match c.D.status with
      | D.Done -> 0
      | D.Failed D.Transient -> 1
      | D.Failed D.Permanent -> 2 )
  in
  let once () =
    let dev, counters = wrap F.heavy in
    let completions = List.map summarize (drive dev 500) in
    (completions, F.injected counters)
  in
  let r1, n1 = once () in
  let r2, n2 = once () in
  Alcotest.(check bool) "same completions" true (r1 = r2);
  Alcotest.(check int) "same injection count" n1 n2;
  Alcotest.(check bool) "something was injected" true (n1 > 0)

let test_burst_window () =
  let plan =
    { F.none with F.burst_every_ops = 10; burst_len_ops = 3; burst_permanent = true }
  in
  let dev, counters = wrap plan in
  let statuses = List.map (fun c -> c.D.status) (drive dev 40) in
  List.iteri
    (fun i status ->
      let expect_fail = i mod 10 < 3 in
      Alcotest.(check bool)
        (Printf.sprintf "op %d %s" i (if expect_fail then "fails" else "succeeds"))
        expect_fail
        (status = D.Failed D.Permanent))
    statuses;
  Alcotest.(check int) "permanent counter" 12 counters.F.permanent_errors;
  Alcotest.(check int) "no transient" 0 counters.F.transient_errors

let test_stall_cadence () =
  let plan = { F.none with F.stall_every_ops = 8; stall_ns = 1_000_000 } in
  let dev, counters = wrap plan in
  let faulty = drive dev 32 in
  let plain = drive (inner ()) 32 in
  List.iteri
    (fun i (f, p) ->
      let expect = if i mod 8 = 7 then 1_000_000 else 0 in
      Alcotest.(check int)
        (Printf.sprintf "op %d stall" i)
        expect
        (f.D.finish_ns - p.D.finish_ns))
    (List.combine faulty plain);
  Alcotest.(check int) "stalls counted" 4 counters.F.stalls

let test_tail_spike_scales_latency () =
  let plan = { F.none with F.tail_prob = 1.0; tail_multiplier = 10.0 } in
  let dev, counters = wrap plan in
  let c = dev.D.submit ~now:1_000 ~op:D.Read ~size_fraction:0.5 in
  let p = (inner ()).D.submit ~now:1_000 ~op:D.Read ~size_fraction:0.5 in
  Alcotest.(check int) "observed latency x10"
    ((p.D.finish_ns - 1_000) * 10)
    (c.D.finish_ns - 1_000);
  Alcotest.(check int) "spike counted" 1 counters.F.tail_spikes

let test_probabilistic_rates () =
  let plan = { F.none with F.read_error_prob = 0.2; write_error_prob = 0.2 } in
  let dev, counters = wrap plan in
  ignore (drive dev 2000);
  let errors = counters.F.transient_errors + counters.F.permanent_errors in
  Alcotest.(check bool)
    (Printf.sprintf "error rate near 20%% (got %d/2000)" errors)
    true
    (errors > 300 && errors < 500);
  (* permanent_fraction = 0 -> every error is transient *)
  Alcotest.(check int) "all transient" 0 counters.F.permanent_errors

let test_failed_ops_occupy_channel () =
  (* Errors happen after the op ran: device counters and queueing state
     advance exactly as on the clean device. *)
  let dev, _ = wrap { F.none with F.burst_every_ops = 1; burst_len_ops = 1 } in
  ignore (drive dev 10);
  let plain = inner () in
  ignore (drive plain 10);
  Alcotest.(check int) "reads counted" (plain.D.reads ()) (dev.D.reads ());
  Alcotest.(check int) "writes counted" (plain.D.writes ()) (dev.D.writes ());
  Alcotest.(check int) "busy horizon equal" (plain.D.busy_until ()) (dev.D.busy_until ())

let test_plan_of_name () =
  Alcotest.(check bool) "none" true (F.plan_of_name "none" = Some F.none);
  Alcotest.(check bool) "light" true (F.plan_of_name "light" = Some F.light);
  Alcotest.(check bool) "heavy" true (F.plan_of_name "heavy" = Some F.heavy);
  Alcotest.(check bool) "unknown" true (F.plan_of_name "broken" = None)

let () =
  Alcotest.run "faulty_device"
    [
      ( "unit",
        [
          Alcotest.test_case "none injects nothing" `Quick test_none_injects_nothing;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "burst window" `Quick test_burst_window;
          Alcotest.test_case "stall cadence" `Quick test_stall_cadence;
          Alcotest.test_case "tail spike" `Quick test_tail_spike_scales_latency;
          Alcotest.test_case "probabilistic rates" `Quick test_probabilistic_rates;
          Alcotest.test_case "failed ops occupy channel" `Quick
            test_failed_ops_occupy_channel;
          Alcotest.test_case "plan names" `Quick test_plan_of_name;
        ] );
    ]
