module S = Stats.Summary

let test_known_values () =
  let s = S.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "n" 8 s.S.n;
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.S.mean;
  (* Sample variance with n-1: sum sq dev = 32, / 7 *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) s.S.variance;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.S.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.S.max;
  Alcotest.(check (float 1e-9)) "sum" 40.0 s.S.sum

let test_singleton () =
  let s = S.of_array [| 3.0 |] in
  Alcotest.(check (float 1e-9)) "variance zero" 0.0 s.S.variance;
  Alcotest.(check (float 1e-9)) "stddev zero" 0.0 s.S.stddev

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty sample")
    (fun () -> ignore (S.of_array [||]))

let test_nan_raises () =
  (* A NaN would silently poison every derived statistic; reject it at
     the door instead. *)
  Alcotest.check_raises "nan" (Invalid_argument "Summary.of_array: NaN in sample")
    (fun () -> ignore (S.of_array [| 1.0; Float.nan; 3.0 |]))

let test_cv_and_spread () =
  let s = S.of_array [| 1.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "spread" 3.0 (S.spread s);
  Alcotest.(check bool) "cv positive" true (S.cv s > 0.0);
  let z = S.of_array [| 0.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "cv of zeros" 0.0 (S.cv z)

let test_of_list_and_ints () =
  let a = S.of_list [ 1.0; 2.0 ] in
  let b = S.of_ints [| 1; 2 |] in
  Alcotest.(check (float 1e-9)) "same mean" a.S.mean b.S.mean

let prop_mean_bounded =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = S.of_list xs in
      s.S.min <= s.S.mean +. 1e-9 && s.S.mean <= s.S.max +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance nonnegative" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let s = S.of_list xs in
      s.S.variance >= 0.0)

let prop_shift_invariance =
  QCheck.Test.make ~name:"variance invariant under shift" ~count:200
    QCheck.(list_of_size Gen.(2 -- 30) (float_range (-50.0) 50.0))
    (fun xs ->
      let s1 = S.of_list xs in
      let s2 = S.of_list (List.map (fun x -> x +. 10.0) xs) in
      Float.abs (s1.S.variance -. s2.S.variance) < 1e-6)

let () =
  Alcotest.run "summary"
    [
      ( "unit",
        [
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "nan raises" `Quick test_nan_raises;
          Alcotest.test_case "cv and spread" `Quick test_cv_and_spread;
          Alcotest.test_case "of_list / of_ints" `Quick test_of_list_and_ints;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mean_bounded; prop_variance_nonneg; prop_shift_invariance ] );
    ]
