let test_walk_mapped () =
  let frames = Mem.Frame_table.create ~frames:8 in
  Mem.Frame_table.set_owner frames ~pfn:3 ~asid:0 ~vpn:77;
  let r = Mem.Rmap.walk frames ~costs:Mem.Costs.default ~pfn:3 in
  Alcotest.(check (option (pair int int))) "mapping" (Some (0, 77)) r.Mem.Rmap.mapping;
  Alcotest.(check int) "cost" Mem.Costs.default.Mem.Costs.rmap_walk_ns r.Mem.Rmap.cost_ns

let test_walk_unmapped () =
  let frames = Mem.Frame_table.create ~frames:8 in
  let r = Mem.Rmap.walk frames ~costs:Mem.Costs.default ~pfn:0 in
  Alcotest.(check (option (pair int int))) "no mapping" None r.Mem.Rmap.mapping;
  Alcotest.(check bool) "cost still paid" true (r.Mem.Rmap.cost_ns > 0)

let test_walk_into () =
  let frames = Mem.Frame_table.create ~frames:8 in
  Mem.Frame_table.set_owner frames ~pfn:1 ~asid:0 ~vpn:10;
  let buf = Mem.Rmap.create_buffer ~capacity:1 () in
  let total =
    Mem.Rmap.walk_into frames ~costs:Mem.Costs.default ~pfns:[ 0; 1; 2 ] buf
  in
  Alcotest.(check int) "three results" 3 buf.Mem.Rmap.n;
  Alcotest.(check int) "summed cost"
    (3 * Mem.Costs.default.Mem.Costs.rmap_walk_ns)
    total;
  Alcotest.(check int) "pfn 0 unmapped" (-1) buf.Mem.Rmap.asids.(0);
  Alcotest.(check int) "pfn 1 asid" 0 buf.Mem.Rmap.asids.(1);
  Alcotest.(check int) "pfn 1 vpn" 10 buf.Mem.Rmap.vpns.(1);
  Alcotest.(check int) "pfn 2 unmapped" (-1) buf.Mem.Rmap.vpns.(2);
  (* The buffer is reused, not reallocated: a second walk overwrites. *)
  let arr_before = buf.Mem.Rmap.asids in
  let _ = Mem.Rmap.walk_into frames ~costs:Mem.Costs.default ~pfns:[ 1 ] buf in
  Alcotest.(check int) "overwritten" 1 buf.Mem.Rmap.n;
  Alcotest.(check bool) "same backing array" true (arr_before == buf.Mem.Rmap.asids)

let test_costs_scaled () =
  let c = Mem.Costs.scaled ~factor:10 Mem.Costs.default in
  Alcotest.(check int) "pte scan x10"
    (10 * Mem.Costs.default.Mem.Costs.pte_scan_ns)
    c.Mem.Costs.pte_scan_ns;
  Alcotest.(check int) "rmap x5"
    (10 * Mem.Costs.default.Mem.Costs.rmap_walk_ns / 2)
    c.Mem.Costs.rmap_walk_ns;
  Alcotest.(check int) "region size untouched"
    Mem.Costs.default.Mem.Costs.region_size c.Mem.Costs.region_size

let test_rmap_much_more_expensive_than_scan () =
  (* The asymmetry the paper's §III-B is built on. *)
  let c = Mem.Costs.default in
  Alcotest.(check bool) "rmap >> pte scan" true
    (c.Mem.Costs.rmap_walk_ns > 100 * c.Mem.Costs.pte_scan_ns)

let () =
  Alcotest.run "rmap"
    [
      ( "unit",
        [
          Alcotest.test_case "walk mapped" `Quick test_walk_mapped;
          Alcotest.test_case "walk unmapped" `Quick test_walk_unmapped;
          Alcotest.test_case "walk into buffer" `Quick test_walk_into;
          Alcotest.test_case "costs scaled" `Quick test_costs_scaled;
          Alcotest.test_case "cost asymmetry" `Quick test_rmap_much_more_expensive_than_scan;
        ] );
    ]
