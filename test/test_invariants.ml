module I = Repro_core.Invariants
module SM = Swapdev.Swap_manager

type world = {
  pt : Mem.Page_table.t;
  frames : Mem.Frame_table.t;
  mem : Mem.Phys_mem.t;
  swap : SM.t;
  retained : int array;
}

let pages = 32

let make_world () =
  let dev = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  {
    pt = Mem.Page_table.create ~region_size:8 ~asid:0 ~pages ();
    frames = Mem.Frame_table.create ~frames:8;
    mem = Mem.Phys_mem.create ~frames:8 ();
    swap = SM.create ~device:dev ~seed:5 ();
    retained = Array.make pages (-1);
  }

let audit w =
  I.audit ~last_chaos:None ~memcg:None ~owners:None ~pt:w.pt ~frames:w.frames
    ~mem:w.mem ~swap:w.swap ~retained_slot:w.retained

let map w ~vpn =
  match Mem.Phys_mem.alloc w.mem with
  | None -> Alcotest.fail "out of frames in test setup"
  | Some pfn ->
    Mem.Frame_table.set_owner w.frames ~pfn ~asid:0 ~vpn;
    Mem.Page_table.set w.pt vpn (Mem.Pte.mapped ~pfn ~file_backed:false);
    pfn

let swap_out w ~vpn =
  match SM.swap_out w.swap ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:vpn with
  | Some slot, _ ->
    Mem.Page_table.set w.pt vpn
      (Mem.Pte.to_swapped (Mem.Page_table.get w.pt vpn) ~slot);
    slot
  | None, _ -> Alcotest.fail "swap_out failed on a fault-free device"

let checks violations = List.map (fun v -> v.I.check) violations

let test_empty_world_clean () =
  Alcotest.(check (list string)) "no violations" [] (checks (audit (make_world ())))

let test_populated_world_clean () =
  let w = make_world () in
  let _pfn = map w ~vpn:3 in
  let pfn5 = map w ~vpn:5 in
  let slot9 = swap_out w ~vpn:9 in
  ignore slot9;
  (* resident page 5 with a clean swap-cache copy *)
  let slot5, _ = SM.swap_out w.swap ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:5 in
  (match slot5 with
  | Some s -> w.retained.(5) <- s
  | None -> Alcotest.fail "swap_out failed");
  ignore pfn5;
  Alcotest.(check (list string)) "no violations" [] (checks (audit w))

let test_detects_rmap_mismatch () =
  let w = make_world () in
  let pfn = map w ~vpn:3 in
  (* frame claims vpn 4, PTE 3 still points at the frame *)
  Mem.Frame_table.set_owner w.frames ~pfn ~asid:0 ~vpn:4;
  let cs = checks (audit w) in
  Alcotest.(check bool) "frame->pte mismatch seen" true
    (List.mem "frame-pte-absent" cs || List.mem "frame-pte-mismatch" cs);
  Alcotest.(check bool) "pte->rmap mismatch seen" true (List.mem "pte-rmap-mismatch" cs)

let test_detects_free_mapped_frame () =
  let w = make_world () in
  let pfn = map w ~vpn:2 in
  Mem.Phys_mem.free w.mem pfn;
  let cs = checks (audit w) in
  Alcotest.(check bool) "freed-but-mapped frame seen" true (List.mem "frame-free" cs)

let test_detects_dead_slot () =
  let w = make_world () in
  let slot = swap_out w ~vpn:7 in
  SM.release w.swap ~slot;
  let cs = checks (audit w) in
  Alcotest.(check bool) "dead slot seen" true (List.mem "pte-dead-slot" cs)

let test_detects_stale_swap_cache () =
  let w = make_world () in
  w.retained.(11) <- 0;
  let cs = checks (audit w) in
  Alcotest.(check bool) "non-resident swap cache seen" true
    (List.mem "swap-cache-nonresident" cs);
  Alcotest.(check bool) "dead cached slot seen" true (List.mem "swap-cache-dead-slot" cs)

let test_detects_leaked_frame () =
  let w = make_world () in
  (* allocated but never mapped: used_count diverges from mapped_count *)
  ignore (Mem.Phys_mem.alloc w.mem);
  let cs = checks (audit w) in
  Alcotest.(check bool) "leak seen" true (List.mem "count-used-mapped" cs)

let test_report_readable () =
  Alcotest.(check string) "clean" "invariants: ok" (I.report []);
  let w = make_world () in
  w.retained.(1) <- 0;
  let s = I.report (audit w) in
  Alcotest.(check bool) "mentions violation count" true
    (String.length s > 0 && s.[String.length s - 1] = '\n')

let test_machine_runs_audited () =
  (* End-to-end: a thrashing trial with a periodic audit cadence must
     come back clean. *)
  let lists = [ Array.init 48 (fun i -> i); Array.init 48 (fun i -> (i * 5) mod 48) ] in
  let w = Workload.Trace.of_page_lists ~footprint:64 lists in
  let cfg =
    {
      (Repro_core.Machine.default_config ~capacity_frames:16 ~seed:11) with
      Repro_core.Machine.kthread_jitter_ns = 0;
      audit_every_ns = 1_000_000;
    }
  in
  let r =
    Repro_core.Machine.run cfg
      ~policy:(Policy.Registry.create Policy.Registry.Mglru_default)
      ~workload:(Workload.Chunk.Packed ((module Workload.Trace), w))
  in
  Alcotest.(check int) "no violations across audits" 0 r.Repro_core.Machine.invariant_violations

let () =
  Alcotest.run "invariants"
    [
      ( "unit",
        [
          Alcotest.test_case "empty world clean" `Quick test_empty_world_clean;
          Alcotest.test_case "populated world clean" `Quick test_populated_world_clean;
          Alcotest.test_case "rmap mismatch" `Quick test_detects_rmap_mismatch;
          Alcotest.test_case "free mapped frame" `Quick test_detects_free_mapped_frame;
          Alcotest.test_case "dead slot" `Quick test_detects_dead_slot;
          Alcotest.test_case "stale swap cache" `Quick test_detects_stale_swap_cache;
          Alcotest.test_case "leaked frame" `Quick test_detects_leaked_frame;
          Alcotest.test_case "report readable" `Quick test_report_readable;
          Alcotest.test_case "machine runs audited" `Quick test_machine_runs_audited;
        ] );
    ]
