module Q = Engine.Event_queue

let test_empty () =
  let q = Q.create () in
  Alcotest.(check bool) "empty" true (Q.is_empty q);
  Alcotest.(check (option int)) "peek" None (Q.peek_time q);
  Alcotest.(check bool) "pop" true (Q.pop q = None)

let test_time_order () =
  let q = Q.create () in
  Q.add q ~time:30 "c";
  Q.add q ~time:10 "a";
  Q.add q ~time:20 "b";
  Alcotest.(check (option int)) "peek" (Some 10) (Q.peek_time q);
  Alcotest.(check (option (pair int string))) "pop a" (Some (10, "a")) (Q.pop q);
  Alcotest.(check (option (pair int string))) "pop b" (Some (20, "b")) (Q.pop q);
  Alcotest.(check (option (pair int string))) "pop c" (Some (30, "c")) (Q.pop q);
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let test_fifo_at_equal_times () =
  let q = Q.create () in
  for i = 0 to 9 do
    Q.add q ~time:5 i
  done;
  for i = 0 to 9 do
    Alcotest.(check (option (pair int int))) "insertion order" (Some (5, i)) (Q.pop q)
  done

let test_negative_time_rejected () =
  let q = Q.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.add: negative time")
    (fun () -> Q.add q ~time:(-1) ())

let test_clear () =
  let q = Q.create () in
  Q.add q ~time:1 ();
  Q.clear q;
  Alcotest.(check int) "size" 0 (Q.size q)

let test_interleaved_add_pop () =
  let q = Q.create () in
  Q.add q ~time:10 10;
  Q.add q ~time:5 5;
  Alcotest.(check bool) "pop 5" true (Q.pop q = Some (5, 5));
  Q.add q ~time:1 1;
  Alcotest.(check bool) "pop 1" true (Q.pop q = Some (1, 1));
  Alcotest.(check bool) "pop 10" true (Q.pop q = Some (10, 10))

(* Regression: [pop] must blank the vacated heap slot with [dummy].
   Before the fix, a popped payload stayed reachable through the spare
   capacity of the payload array until a later [add] happened to reuse
   the slot, pinning arbitrarily large closures across the run. *)
let test_pop_releases_payloads () =
  let n = 16 in
  let w = Weak.create n in
  let q : int array Q.t = Q.create ~dummy:[||] () in
  let fill () =
    for i = 0 to n - 1 do
      let payload = Array.make 8 i in
      Weak.set w i (Some payload);
      Q.add q ~time:i payload
    done
  in
  fill ();
  for _ = 1 to n do
    match Q.pop q with
    | Some _ -> ()
    | None -> Alcotest.fail "queue drained early"
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  Alcotest.(check int) "popped payloads still pinned by the heap" 0 !live

(* Regression: [clear] must release the backing arrays, not just reset
   [len] — otherwise a drained queue pins its high-water-mark capacity
   (and every payload parked in it) for the rest of the run. *)
let test_clear_releases_capacity () =
  let n = 64 in
  let w = Weak.create n in
  let q : int array Q.t = Q.create ~dummy:[||] () in
  let fill () =
    for i = 0 to n - 1 do
      let payload = Array.make 4 i in
      Weak.set w i (Some payload);
      Q.add q ~time:i payload
    done
  in
  fill ();
  Q.clear q;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  Alcotest.(check int) "cleared payloads still pinned by the heap" 0 !live;
  Alcotest.(check int) "size" 0 (Q.size q);
  (* The queue must stay usable after the capacity reset. *)
  Q.add q ~time:3 (Array.make 1 3);
  Q.add q ~time:1 (Array.make 1 1);
  Alcotest.(check (option int)) "peek after clear" (Some 1) (Q.peek_time q)

let prop_pops_sorted =
  QCheck.Test.make ~name:"pops come out time-sorted" ~count:200
    QCheck.(list small_nat)
    (fun times ->
      let q = Q.create () in
      List.iter (fun t -> Q.add q ~time:t t) times;
      let rec drain acc =
        match Q.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort compare times)

let prop_size_tracks =
  QCheck.Test.make ~name:"size tracks adds and pops" ~count:200
    QCheck.(list (int_bound 100))
    (fun times ->
      let q = Q.create () in
      List.iter (fun t -> Q.add q ~time:t ()) times;
      let n = List.length times in
      Q.size q = n
      &&
      (ignore (Q.pop q);
       Q.size q = max 0 (n - 1)))

let () =
  Alcotest.run "event_queue"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "time order" `Quick test_time_order;
          Alcotest.test_case "fifo at equal times" `Quick test_fifo_at_equal_times;
          Alcotest.test_case "negative time rejected" `Quick test_negative_time_rejected;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "interleaved" `Quick test_interleaved_add_pop;
          Alcotest.test_case "pop releases payloads" `Quick
            test_pop_releases_payloads;
          Alcotest.test_case "clear releases capacity" `Quick
            test_clear_releases_capacity;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pops_sorted; prop_size_tracks ] );
    ]
