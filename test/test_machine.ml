module M = Repro_core.Machine
module C = Workload.Chunk

(* A tiny deterministic workload: one thread touching an explicit page
   sequence. *)
let trace_workload ?(footprint = 64) lists =
  let w = Workload.Trace.of_page_lists ~footprint lists in
  C.Packed ((module Workload.Trace), w)

let config ?(capacity = 16) ?(swap = M.ssd) ?(readahead = 0) () =
  {
    (M.default_config ~capacity_frames:capacity ~seed:7) with
    M.swap;
    readahead;
    kthread_jitter_ns = 0;
  }

let run ?capacity ?swap ?readahead ~policy lists =
  M.run
    (config ?capacity ?swap ?readahead ())
    ~policy:(Policy.Registry.create policy)
    ~workload:(trace_workload lists)

let test_minor_faults_only () =
  (* Footprint below capacity: everything zero-fills, nothing swaps. *)
  let r = run ~capacity:32 ~policy:Policy.Registry.Clock [ Array.init 16 (fun i -> i) ] in
  Alcotest.(check int) "minor faults" 16 r.M.minor_faults;
  Alcotest.(check int) "no major faults" 0 r.M.major_faults;
  Alcotest.(check int) "no swap" 0 r.M.swap_ins;
  Alcotest.(check int) "all resident" 16 r.M.resident_at_end;
  Alcotest.(check bool) "time advanced" true (r.M.runtime_ns > 0)

let test_thrash_counts_faults () =
  (* Touch 32 pages twice with capacity 16: second pass must major-fault. *)
  let pass = Array.init 32 (fun i -> i) in
  let r = run ~capacity:16 ~policy:Policy.Registry.Clock [ pass; pass ] in
  Alcotest.(check int) "first pass minor" 32 r.M.minor_faults;
  Alcotest.(check bool) "second pass majors" true (r.M.major_faults >= 16);
  Alcotest.(check bool) "swap outs happened" true (r.M.swap_outs > 0);
  Alcotest.(check bool) "residency bounded by capacity" true (r.M.resident_at_end <= 16)

let test_determinism () =
  let pass = Array.init 32 (fun i -> (i * 7) mod 32) in
  let r1 = run ~capacity:16 ~policy:Policy.Registry.Mglru_default [ pass; pass; pass ] in
  let r2 = run ~capacity:16 ~policy:Policy.Registry.Mglru_default [ pass; pass; pass ] in
  Alcotest.(check int) "same runtime" r1.M.runtime_ns r2.M.runtime_ns;
  Alcotest.(check int) "same faults" r1.M.major_faults r2.M.major_faults

let test_zram_faster_than_ssd () =
  let pass = Array.init 32 (fun i -> i) in
  let r_ssd = run ~capacity:16 ~swap:M.ssd ~policy:Policy.Registry.Clock [ pass; pass ] in
  let r_zram = run ~capacity:16 ~swap:M.zram ~policy:Policy.Registry.Clock [ pass; pass ] in
  Alcotest.(check bool) "zram much faster" true
    (r_zram.M.runtime_ns * 5 < r_ssd.M.runtime_ns)

let test_swap_cache_avoids_clean_writeback () =
  (* Read-only thrash: after the first eviction cycle, pages are clean
     copies and should mostly not be rewritten. *)
  let pass = Array.init 32 (fun i -> i) in
  let r = run ~capacity:16 ~policy:Policy.Registry.Fifo [ pass; pass; pass; pass ] in
  (* Every page is written at most once (its contents never change). *)
  Alcotest.(check bool)
    (Printf.sprintf "outs %d bounded by footprint" r.M.swap_outs)
    true
    (r.M.swap_outs <= 32 + 4);
  Alcotest.(check bool) "ins keep happening" true (r.M.swap_ins > 40)

let test_dirty_pages_rewritten () =
  let pass = Array.init 32 (fun i -> i) in
  let w =
    Workload.Trace.create
      {
        Workload.Trace.steps =
          [|
            Array.of_list
              (List.concat_map
                 (fun _ -> [ C.Chunk (C.chunk ~write:true (C.Pages pass)) ])
                 [ (); (); (); () ]);
          |];
        footprint = 64;
        klass = (fun _ -> Swapdev.Compress.Numeric);
        file_backed_pages = (fun _ -> false);
      }
  in
  let r =
    M.run (config ~capacity:16 ())
      ~policy:(Policy.Registry.create Policy.Registry.Fifo)
      ~workload:(C.Packed ((module Workload.Trace), w))
  in
  (* Dirty pages must be written back on every eviction cycle. *)
  Alcotest.(check bool)
    (Printf.sprintf "outs %d track evictions" r.M.swap_outs)
    true
    (r.M.swap_outs > 64)

let test_readahead_helps_sequential () =
  let pass = Array.init 48 (fun i -> i) in
  let without = run ~capacity:16 ~readahead:0 ~policy:Policy.Registry.Fifo [ pass; pass; pass ] in
  let with_ra =
    M.run
      { (config ~capacity:16 ()) with M.readahead = 8 }
      ~policy:(Policy.Registry.create Policy.Registry.Fifo)
      ~workload:(trace_workload [ pass; pass; pass ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "majors %d < %d" with_ra.M.major_faults without.M.major_faults)
    true
    (with_ra.M.major_faults < without.M.major_faults)

let test_barrier_synchronizes () =
  (* Two threads: thread 1 does nothing but must still wait at the
     barrier until thread 0's slow chunk completes. *)
  let steps =
    [|
      [| C.Chunk (C.chunk ~cpu_ns:1_000_000 (C.Single 0)); C.Barrier;
         C.Chunk (C.chunk (C.Single 1)) |];
      [| C.Barrier; C.Chunk (C.chunk (C.Single 2)) |];
    |]
  in
  let w =
    Workload.Trace.create
      {
        Workload.Trace.steps = steps;
        footprint = 16;
        klass = (fun _ -> Swapdev.Compress.Numeric);
        file_backed_pages = (fun _ -> false);
      }
  in
  let r =
    M.run (config ~capacity:8 ())
      ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(C.Packed ((module Workload.Trace), w))
  in
  Alcotest.(check bool) "thread 1 finished after thread 0's compute" true
    (r.M.per_thread_finish.(1) >= 1_000_000)

let test_latency_recording () =
  let steps =
    [|
      [|
        C.Chunk (C.chunk ~latency_class:C.read_class (C.Single 0));
        C.Chunk (C.chunk ~latency_class:C.write_class ~write:true (C.Single 1));
        C.Chunk (C.chunk ~latency_class:C.read_class (C.Single 2));
      |];
    |]
  in
  let w =
    Workload.Trace.create
      {
        Workload.Trace.steps = steps;
        footprint = 16;
        klass = (fun _ -> Swapdev.Compress.Numeric);
        file_backed_pages = (fun _ -> false);
      }
  in
  let r =
    M.run (config ~capacity:8 ())
      ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(C.Packed ((module Workload.Trace), w))
  in
  Alcotest.(check int) "two reads" 2 (Array.length r.M.read_latencies);
  Alcotest.(check int) "one write" 1 (Array.length r.M.write_latencies);
  Array.iter
    (fun l -> Alcotest.(check bool) "latency positive" true (l > 0.0))
    r.M.read_latencies

let test_policy_stats_surface () =
  let pass = Array.init 32 (fun i -> i) in
  let r = run ~capacity:16 ~policy:Policy.Registry.Mglru_default [ pass; pass ] in
  Alcotest.(check string) "policy name" "mglru" r.M.policy_name;
  Alcotest.(check bool) "stats exported" true (List.length r.M.policy_stats > 0)

(* ---- fault injection & degradation ---- *)

let run_plan ?(capacity = 16) ?audit_every_ns ~plan ~policy lists =
  let cfg = config ~capacity () in
  let cfg =
    { cfg with M.fault_plan = plan;
      audit_every_ns = Option.value audit_every_ns ~default:cfg.M.audit_every_ns }
  in
  M.run cfg ~policy:(Policy.Registry.create policy) ~workload:(trace_workload lists)

let thrash_lists n =
  [ Array.init n (fun i -> i); Array.init n (fun i -> (i * 7) mod n);
    Array.init n (fun i -> i) ]

let test_zero_plan_identical () =
  (* An explicit all-zero plan must not perturb anything: the device is
     not even wrapped, so the RNG stream is untouched. *)
  let base = run ~capacity:16 ~policy:Policy.Registry.Mglru_default (thrash_lists 32) in
  let zeroed =
    run_plan ~plan:Swapdev.Faulty_device.none ~policy:Policy.Registry.Mglru_default
      (thrash_lists 32)
  in
  Alcotest.(check int) "same runtime" base.M.runtime_ns zeroed.M.runtime_ns;
  Alcotest.(check int) "same majors" base.M.major_faults zeroed.M.major_faults;
  Alcotest.(check int) "nothing injected" 0
    (zeroed.M.injected_transient + zeroed.M.injected_permanent
    + zeroed.M.injected_stalls + zeroed.M.injected_tail_spikes);
  Alcotest.(check int) "no oom" 0 zeroed.M.oom_kills;
  Alcotest.(check int) "invariants hold" 0 zeroed.M.invariant_violations

let test_transient_errors_retried () =
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.read_error_prob = 0.4; write_error_prob = 0.4 }
  in
  let r =
    run_plan ~plan ~audit_every_ns:1_000_000 ~policy:Policy.Registry.Clock
      (thrash_lists 48)
  in
  Alcotest.(check bool) "errors injected" true (r.M.injected_transient > 0);
  Alcotest.(check bool) "retries absorbed them" true (r.M.io_retries > 0);
  Alcotest.(check bool) "every thread finished" true
    (Array.for_all (fun f -> f >= 0) r.M.per_thread_finish);
  Alcotest.(check int) "invariants hold" 0 r.M.invariant_violations

let test_permanent_reads_poison () =
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.read_error_prob = 1.0; permanent_fraction = 1.0 }
  in
  let r = run_plan ~plan ~policy:Policy.Registry.Clock (thrash_lists 48) in
  Alcotest.(check bool) "reads poisoned" true (r.M.poisoned_reads > 0);
  Alcotest.(check bool) "run completed" true
    (Array.for_all (fun f -> f >= 0) r.M.per_thread_finish);
  Alcotest.(check int) "no oom needed" 0 r.M.oom_kills;
  Alcotest.(check int) "invariants hold" 0 r.M.invariant_violations

let test_permanent_writes_pin_then_oom () =
  (* Nothing can ever be written out, so reclaim pins page after page
     until the OOM killer must step in; the trial still terminates. *)
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 1.0; permanent_fraction = 1.0 }
  in
  let r =
    run_plan ~plan ~audit_every_ns:1_000_000 ~policy:Policy.Registry.Clock
      (thrash_lists 64)
  in
  Alcotest.(check bool) "writebacks failed" true (r.M.writeback_failures > 0);
  Alcotest.(check bool) "oom killer fired" true (r.M.oom_kills >= 1);
  Alcotest.(check bool) "pages discarded" true (r.M.oom_discarded_pages > 0);
  Alcotest.(check bool) "run completed" true
    (Array.for_all (fun f -> f >= 0) r.M.per_thread_finish);
  Alcotest.(check int) "invariants hold" 0 r.M.invariant_violations

let test_oom_spares_survivors () =
  (* Two threads on disjoint ranges; the fatter one is sacrificed and
     the other must still run to completion. *)
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 1.0; permanent_fraction = 1.0 }
  in
  let big = Array.init 48 (fun i -> i) in
  let small = Array.init 8 (fun i -> 48 + i) in
  let w =
    Workload.Trace.of_page_lists ~footprint:64
      [ Array.concat [ big; big ]; Array.concat [ small; small; small ] ]
  in
  let cfg = { (config ~capacity:24 ()) with M.fault_plan = plan } in
  let r =
    M.run cfg
      ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(Workload.Chunk.Packed ((module Workload.Trace), w))
  in
  Alcotest.(check bool) "oom fired" true (r.M.oom_kills >= 1);
  Alcotest.(check bool) "both threads terminated" true
    (Array.for_all (fun f -> f >= 0) r.M.per_thread_finish);
  Alcotest.(check int) "invariants hold" 0 r.M.invariant_violations

let test_heavy_plan_deterministic () =
  let go () =
    run_plan ~plan:Swapdev.Faulty_device.heavy ~audit_every_ns:5_000_000
      ~policy:Policy.Registry.Mglru_default (thrash_lists 64)
  in
  let r1 = go () in
  let r2 = go () in
  Alcotest.(check int) "same runtime" r1.M.runtime_ns r2.M.runtime_ns;
  Alcotest.(check int) "same poisons" r1.M.poisoned_reads r2.M.poisoned_reads;
  Alcotest.(check int) "same retries" r1.M.io_retries r2.M.io_retries;
  Alcotest.(check bool) "faults actually injected" true
    (r1.M.injected_transient + r1.M.injected_permanent > 0);
  Alcotest.(check int) "invariants hold" 0 r1.M.invariant_violations

let () =
  Alcotest.run "machine"
    [
      ( "unit",
        [
          Alcotest.test_case "minor faults only" `Quick test_minor_faults_only;
          Alcotest.test_case "thrash counts faults" `Quick test_thrash_counts_faults;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "zram faster" `Quick test_zram_faster_than_ssd;
          Alcotest.test_case "swap cache" `Quick test_swap_cache_avoids_clean_writeback;
          Alcotest.test_case "dirty rewritten" `Quick test_dirty_pages_rewritten;
          Alcotest.test_case "readahead helps" `Quick test_readahead_helps_sequential;
          Alcotest.test_case "barrier" `Quick test_barrier_synchronizes;
          Alcotest.test_case "latency recording" `Quick test_latency_recording;
          Alcotest.test_case "policy stats" `Quick test_policy_stats_surface;
        ] );
      ( "faults",
        [
          Alcotest.test_case "zero plan identical" `Quick test_zero_plan_identical;
          Alcotest.test_case "transient retried" `Quick test_transient_errors_retried;
          Alcotest.test_case "permanent reads poison" `Quick test_permanent_reads_poison;
          Alcotest.test_case "permanent writes pin then oom" `Quick
            test_permanent_writes_pin_then_oom;
          Alcotest.test_case "oom spares survivors" `Quick test_oom_spares_survivors;
          Alcotest.test_case "heavy plan deterministic" `Quick
            test_heavy_plan_deterministic;
        ] );
    ]
