module O = Obs
module R = Repro_core.Runner

(* ------------------------------------------------------------------ *)
(* Sink basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_disabled_sink () =
  Alcotest.(check bool) "disabled" false (O.enabled O.disabled);
  Alcotest.(check bool) "not tracing" false (O.tracing O.disabled);
  Alcotest.(check int) "no cadence" 0 (O.sample_every_ns O.disabled);
  O.emit O.disabled ~t_ns:1 (O.Demote { pfn = 3 });
  O.push_sample O.disabled ~t_ns:1 [ ("x", 1.0) ];
  Alcotest.(check bool) "no capture" true (O.capture O.disabled = None);
  Alcotest.(check bool) "create off = disabled" true (O.capture (O.create O.off) = None)

let test_enabled_sink_records () =
  let s = O.create { O.trace = true; sample_every_ns = 10 } in
  O.emit s ~t_ns:5 (O.Evict { vpn = 42; dirty = true });
  O.emit s ~t_ns:9
    (O.Reclaim { want = 32; freed = 30; scanned = 64; latency_ns = 1234 });
  O.push_sample s ~t_ns:10 [ ("free_frames", 7.0) ];
  match O.capture s with
  | None -> Alcotest.fail "expected a capture"
  | Some c ->
    Alcotest.(check int) "two events" 2 (Array.length c.O.events);
    Alcotest.(check int) "one sample" 1 (Array.length c.O.samples);
    let t0, e0 = c.O.events.(0) in
    Alcotest.(check int) "t_ns preserved" 5 t0;
    Alcotest.(check string) "kind" "evict" (O.kind_name e0);
    (* Reclaim events feed the latency histogram. *)
    Alcotest.(check int) "hist count" 1 (Stats.Histogram.count c.O.reclaim_hist);
    Alcotest.(check (float 1e-9)) "hist max" 1234.0
      (Stats.Histogram.max_seen c.O.reclaim_hist)

let test_sampling_only_config () =
  (* sample_every_ns > 0 with trace = false: samples kept, events dropped. *)
  let s = O.create { O.trace = false; sample_every_ns = 100 } in
  Alcotest.(check bool) "enabled" true (O.enabled s);
  Alcotest.(check bool) "not tracing" false (O.tracing s);
  O.emit s ~t_ns:1 (O.Demote { pfn = 1 });
  O.push_sample s ~t_ns:100 [ ("resident", 3.0) ];
  match O.capture s with
  | None -> Alcotest.fail "expected a capture"
  | Some c ->
    Alcotest.(check int) "no events" 0 (Array.length c.O.events);
    Alcotest.(check int) "one sample" 1 (Array.length c.O.samples)

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let all_events =
  [
    O.Evict { vpn = 17; dirty = false };
    O.Promote { pfn = 99; reason = O.Aging };
    O.Promote { pfn = 3; reason = O.Second_chance };
    O.Demote { pfn = 21 };
    O.Aging_pass { pass = 4; max_seq = 12; min_seq = 9 };
    O.Reclaim { want = 32; freed = 31; scanned = 77; latency_ns = 420_000 };
    O.Swap_read { slot = 5; latency_ns = 90_000; retries = 1; failed = false };
    O.Swap_write
      { slot = -1; latency_ns = 10; retries = 3; failed = true; remapped = true };
    O.Oom_kill { tid = 2; discarded = 511 };
  ]

let cell =
  [
    ("workload", O.Str "tpch");
    ("policy", O.Str "mglru");
    ("ratio", O.Float 0.5);
    ("swap", O.Str "ssd");
    ("trial", O.Int 0);
  ]

let test_jsonl_round_trip () =
  List.iteri
    (fun i ev ->
      let line = O.jsonl_line ~cell ~t_ns:(1000 + i) ev in
      match O.parse_line line with
      | Error msg -> Alcotest.failf "parse %S: %s" line msg
      | Ok fields ->
        Alcotest.(check (option string))
          "workload survives" (Some "tpch")
          (O.field_string fields "workload");
        Alcotest.(check (option int)) "t_ns survives" (Some (1000 + i))
          (O.field_int fields "t_ns");
        Alcotest.(check (option string))
          "kind survives" (Some (O.kind_name ev))
          (O.field_string fields "kind");
        (* Every payload field must survive the round trip. *)
        List.iter
          (fun (k, v) ->
            match (v, O.field fields k) with
            | O.Int n, Some got ->
              Alcotest.(check (option int))
                (Printf.sprintf "field %s" k)
                (Some n)
                (match got with
                | O.Int m -> Some m
                | O.Float f when Float.is_integer f -> Some (int_of_float f)
                | _ -> None)
            | O.Bool b, Some (O.Bool b') ->
              Alcotest.(check bool) (Printf.sprintf "field %s" k) b b'
            | O.Str s, Some (O.Str s') ->
              Alcotest.(check string) (Printf.sprintf "field %s" k) s s'
            | O.Float f, Some (O.Float f') ->
              Alcotest.(check (float 1e-9)) (Printf.sprintf "field %s" k) f f'
            | _, got ->
              Alcotest.failf "field %s: unexpected shape (%s)" k
                (match got with None -> "missing" | Some _ -> "wrong type"))
          (O.event_fields ev))
    all_events

let test_jsonl_string_escapes () =
  let cell = [ ("workload", O.Str "we\"ird\\name\nwith\ttabs") ] in
  let line = O.jsonl_line ~cell ~t_ns:1 (O.Demote { pfn = 0 }) in
  match O.parse_line line with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok fields ->
    Alcotest.(check (option string))
      "escapes round-trip"
      (Some "we\"ird\\name\nwith\ttabs")
      (O.field_string fields "workload")

let test_parse_rejects_malformed () =
  let bad =
    [
      ""; "{"; "nonsense"; "{\"a\":}"; "{\"a\":1,}"; "{\"a\" 1}"; "[1,2]";
      (* \u escapes must be exactly four hex digits — int_of_string
         leniency ("0x00_1") must not leak into the parser. *)
      "{\"a\":\"\\u00_1\"}"; "{\"a\":\"\\u12\"}"; "{\"a\":\"\\uzzzz\"}";
      "{\"a\":\"\\u 123\"}"; "{\"a\":\"\\x41\"}";
    ]
  in
  List.iter
    (fun line ->
      match O.parse_line line with
      | Ok _ -> Alcotest.failf "accepted malformed %S" line
      | Error _ -> ())
    bad

(* Every byte string — control characters, quotes, backslashes, broken
   escape lookalikes — must survive json_object + parse_line unchanged. *)
let qcheck_string_escape_round_trip =
  QCheck.Test.make ~count:1000 ~name:"string escaping round-trips"
    QCheck.(string_gen Gen.char)
    (fun s ->
      let line = O.json_object [ ("k", O.Str s) ] in
      match O.parse_line line with
      | Ok fields -> O.field_string fields "k" = Some s
      | Error _ -> false)

let adversarial_strings =
  [
    "\\u0041"; "\\"; "\\\\"; "\"\""; "\n\r\t"; "\x00\x01\x1f";
    "trailing backslash \\"; "\\u00"; "a\"b\\c\nd"; String.make 3 '\x07';
  ]

let test_adversarial_escapes_round_trip () =
  List.iter
    (fun s ->
      let line = O.json_object [ ("k", O.Str s); ("n", O.Int 1) ] in
      match O.parse_line line with
      | Error msg -> Alcotest.failf "parse %S: %s" line msg
      | Ok fields ->
        Alcotest.(check (option string)) "value survives" (Some s)
          (O.field_string fields "k");
        Alcotest.(check (option int)) "trailing field intact" (Some 1)
          (O.field_int fields "n"))
    adversarial_strings

(* ------------------------------------------------------------------ *)
(* Machine-level behaviour                                             *)
(* ------------------------------------------------------------------ *)

let fast_profile = { R.trials = 1; ycsb_trials = 1; fast = true; scale = 1 }

let tpch_exp =
  {
    R.workload = R.Tpch;
    policy = Policy.Registry.Mglru_default;
    ratio = 0.5;
    swap = R.Ssd;
    trial = 0;
  }

let test_tracing_does_not_perturb () =
  (* The same experiment with and without telemetry must agree on every
     aggregate counter: sinks observe, they never steer. *)
  let plain = R.run_exp (R.make_ctx ~profile:fast_profile ()) tpch_exp in
  let traced_ctx =
    R.make_ctx ~profile:fast_profile
      ~obs:{ O.trace = true; sample_every_ns = 10_000_000 }
      ()
  in
  let traced = R.run_exp traced_ctx tpch_exp in
  Alcotest.(check bool) "plain has no capture" true
    (plain.Repro_core.Machine.trace = None);
  Alcotest.(check bool) "traced has a capture" true
    (traced.Repro_core.Machine.trace <> None);
  Alcotest.(check int) "runtime identical"
    plain.Repro_core.Machine.runtime_ns traced.Repro_core.Machine.runtime_ns;
  Alcotest.(check int) "major faults identical"
    plain.Repro_core.Machine.major_faults
    traced.Repro_core.Machine.major_faults;
  Alcotest.(check int) "swap outs identical"
    plain.Repro_core.Machine.swap_outs traced.Repro_core.Machine.swap_outs;
  Alcotest.(check int) "direct reclaims identical"
    plain.Repro_core.Machine.direct_reclaims
    traced.Repro_core.Machine.direct_reclaims

let test_capture_contents () =
  let ctx =
    R.make_ctx ~profile:fast_profile
      ~obs:{ O.trace = true; sample_every_ns = 10_000_000 }
      ()
  in
  let r = R.run_exp ctx tpch_exp in
  match r.Repro_core.Machine.trace with
  | None -> Alcotest.fail "expected a capture"
  | Some c ->
    Alcotest.(check bool) "events recorded" true (Array.length c.O.events > 0);
    Alcotest.(check bool) "samples recorded" true (Array.length c.O.samples > 0);
    (* Events are kept in emission order; stamps (episode/submission
       starts, so not globally sorted) must stay within the run. *)
    Array.iter
      (fun (t, _) ->
        Alcotest.(check bool) "stamp within run" true
          (t >= 0 && t <= r.Repro_core.Machine.runtime_ns))
      c.O.events;
    (* Samples land exactly on the configured cadence. *)
    Array.iter
      (fun (t, metrics) ->
        Alcotest.(check int) "on cadence" 0 (t mod 10_000_000);
        Alcotest.(check bool) "has free_frames" true
          (List.mem_assoc "free_frames" metrics);
        Alcotest.(check bool) "has policy gauges" true
          (List.exists
             (fun (k, _) -> String.length k > 7 && String.sub k 0 7 = "policy.")
             metrics))
      c.O.samples;
    (* MG-LRU under memory pressure must show the reclaim pipeline. *)
    let count k =
      Array.fold_left
        (fun acc (_, e) -> if O.kind_name e = k then acc + 1 else acc)
        0 c.O.events
    in
    Alcotest.(check bool) "evictions traced" true (count "evict" > 0);
    Alcotest.(check bool) "reclaims traced" true (count "reclaim" > 0);
    Alcotest.(check bool) "aging passes traced" true (count "aging_pass" > 0);
    Alcotest.(check bool) "swap writes traced" true (count "swap_write" > 0);
    Alcotest.(check int) "hist mirrors reclaim events" (count "reclaim")
      (Stats.Histogram.count c.O.reclaim_hist)

(* ------------------------------------------------------------------ *)
(* Fault layer x trace layer: degraded trials still produce complete,  *)
(* counter-consistent telemetry                                        *)
(* ------------------------------------------------------------------ *)

module M = Repro_core.Machine

let traced_fault_run ~plan =
  let lists =
    [ Array.init 64 (fun i -> i); Array.init 64 (fun i -> (i * 7) mod 64);
      Array.init 64 (fun i -> i) ]
  in
  let w = Workload.Trace.of_page_lists ~footprint:64 lists in
  let cfg =
    {
      (M.default_config ~capacity_frames:16 ~seed:7) with
      M.fault_plan = plan;
      kthread_jitter_ns = 0;
      obs = { O.trace = true; sample_every_ns = 0 };
    }
  in
  M.run cfg
    ~policy:(Policy.Registry.create Policy.Registry.Clock)
    ~workload:(Workload.Chunk.Packed ((module Workload.Trace), w))

let swap_event_counters events =
  (* (sum of per-op retries, failed reads, failed writes, oom kills) *)
  Array.fold_left
    (fun (retries, fr, fw, oom) (_, e) ->
      match e with
      | O.Swap_read { retries = r; failed; _ } ->
        (retries + r, (if failed then fr + 1 else fr), fw, oom)
      | O.Swap_write { retries = r; failed; _ } ->
        (retries + r, fr, (if failed then fw + 1 else fw), oom)
      | O.Oom_kill _ -> (retries, fr, fw, oom + 1)
      | _ -> (retries, fr, fw, oom))
    (0, 0, 0, 0) events

let test_oom_killed_trial_still_traced () =
  (* Nothing can ever be written back, so reclaim pins pages until the
     OOM killer fires — and the sink must still hold the whole story. *)
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 1.0; permanent_fraction = 1.0 }
  in
  let r = traced_fault_run ~plan in
  Alcotest.(check bool) "oom killer fired" true (r.M.oom_kills >= 1);
  Alcotest.(check bool) "degraded run completed" true
    (Array.for_all (fun f -> f >= 0) r.M.per_thread_finish);
  match r.M.trace with
  | None -> Alcotest.fail "OOM-killed trial lost its capture"
  | Some c ->
    let _, _, failed_writes, oom_events = swap_event_counters c.O.events in
    Alcotest.(check int) "every oom kill traced" r.M.oom_kills oom_events;
    Alcotest.(check bool) "writebacks failed" true (r.M.writeback_failures > 0);
    Alcotest.(check int) "failed-write events match counter"
      r.M.writeback_failures failed_writes

let test_fault_counters_match_trace () =
  (* Under the heavy preset, the result's aggregate I/O counters must
     equal what the per-event trace adds up to: the two layers observe
     one stream of truth. *)
  let r = traced_fault_run ~plan:Swapdev.Faulty_device.heavy in
  Alcotest.(check bool) "faults injected" true
    (r.M.injected_transient + r.M.injected_permanent > 0);
  match r.M.trace with
  | None -> Alcotest.fail "expected a capture"
  | Some c ->
    let retries, failed_reads, failed_writes, _ =
      swap_event_counters c.O.events
    in
    Alcotest.(check bool) "retries happened" true (r.M.io_retries > 0);
    Alcotest.(check int) "retry sum matches counter" r.M.io_retries retries;
    Alcotest.(check int) "poisoned reads match failed read events"
      r.M.poisoned_reads failed_reads;
    Alcotest.(check int) "writeback failures match failed write events"
      r.M.writeback_failures failed_writes

(* ------------------------------------------------------------------ *)
(* Runner-level determinism: --jobs N traces byte-identical to serial  *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let trace_everything jobs =
  let ctx =
    R.make_ctx
      ~profile:{ R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }
      ~jobs
      ~obs:{ O.trace = true; sample_every_ns = 25_000_000 }
      ()
  in
  let exps =
    List.concat_map
      (fun policy ->
        R.cell_exps ctx ~workload:R.Tpch ~policy ~ratio:0.5 ~swap:R.Ssd)
      [ Policy.Registry.Clock; Policy.Registry.Mglru_default ]
  in
  R.prefetch ctx exps;
  let dir = Filename.temp_file "obs_test" "" in
  Sys.remove dir;
  let trace = dir ^ ".jsonl" and samples = dir ^ ".csv" in
  let n_ev = R.write_trace ctx ~path:trace in
  let n_rows = R.write_samples ctx ~path:samples in
  let out = (read_file trace, read_file samples, n_ev, n_rows) in
  Sys.remove trace;
  Sys.remove samples;
  out

let test_parallel_trace_deterministic () =
  let t1, s1, ev1, rows1 = trace_everything 1 in
  let t4, s4, ev4, rows4 = trace_everything 4 in
  Alcotest.(check bool) "events recorded" true (ev1 > 0);
  Alcotest.(check bool) "samples recorded" true (rows1 > 0);
  Alcotest.(check int) "event counts equal" ev1 ev4;
  Alcotest.(check int) "row counts equal" rows1 rows4;
  Alcotest.(check bool) "trace byte-identical" true (String.equal t1 t4);
  Alcotest.(check bool) "samples byte-identical" true (String.equal s1 s4)

let test_merged_reclaim_hists () =
  let ctx =
    R.make_ctx ~profile:{ R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }
      ~obs:{ O.trace = true; sample_every_ns = 0 }
      ()
  in
  let exps =
    R.cell_exps ctx ~workload:R.Tpch ~policy:Policy.Registry.Mglru_default
      ~ratio:0.5 ~swap:R.Ssd
  in
  R.prefetch ctx exps;
  match R.merged_reclaim_hists ctx with
  | [ (name, h) ] ->
    Alcotest.(check string) "policy name" "mglru" name;
    let per_trial =
      List.map
        (fun e ->
          match (R.run_exp ctx e).Repro_core.Machine.trace with
          | Some c -> Stats.Histogram.count c.O.reclaim_hist
          | None -> 0)
        exps
    in
    Alcotest.(check int) "merge sums trials"
      (List.fold_left ( + ) 0 per_trial)
      (Stats.Histogram.count h)
  | l -> Alcotest.failf "expected one policy, got %d" (List.length l)

let () =
  Alcotest.run "obs"
    [
      ( "sink",
        [
          Alcotest.test_case "disabled" `Quick test_disabled_sink;
          Alcotest.test_case "records" `Quick test_enabled_sink_records;
          Alcotest.test_case "sampling only" `Quick test_sampling_only_config;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "string escapes" `Quick test_jsonl_string_escapes;
          Alcotest.test_case "rejects malformed" `Quick test_parse_rejects_malformed;
          QCheck_alcotest.to_alcotest qcheck_string_escape_round_trip;
          Alcotest.test_case "adversarial escapes" `Quick
            test_adversarial_escapes_round_trip;
        ] );
      ( "machine",
        [
          Alcotest.test_case "no perturbation" `Quick test_tracing_does_not_perturb;
          Alcotest.test_case "capture contents" `Quick test_capture_contents;
          Alcotest.test_case "oom-killed trial still traced" `Quick
            test_oom_killed_trial_still_traced;
          Alcotest.test_case "fault counters match trace" `Quick
            test_fault_counters_match_trace;
        ] );
      ( "runner",
        [
          Alcotest.test_case "parallel determinism" `Quick
            test_parallel_trace_deterministic;
          Alcotest.test_case "merged histograms" `Quick test_merged_reclaim_hists;
        ] );
    ]
