(** Miniature machine for exercising policies without the full
    simulator: one page table, a frame allocator, and a reclaim callback
    that unmaps and frees exactly like the real machine (minus I/O). *)

type world = {
  mutable env : Policy.Policy_intf.env;
  pt : Mem.Page_table.t;
  frames : Mem.Frame_table.t;
  mem : Mem.Phys_mem.t;
  mutable now_ns : int;
  mutable reclaimed : int list; (* pfn, most recent first *)
  mutable reclaimed_vpns : int list;
  mutable next_slot : int;
}

let make_world ?(frames = 64) ?(pages = 256) ?(region_size = 16)
    ?(file_backed = fun _ -> false) ?(seed = 42) () =
  let pt = Mem.Page_table.create ~region_size ~asid:0 ~pages () in
  let ft = Mem.Frame_table.create ~frames in
  let mem = Mem.Phys_mem.create ~frames () in
  (* A throwaway env fills the field until the real one (whose closures
     capture [world]) replaces it below. *)
  let dummy_env =
    {
      Policy.Policy_intf.costs = Mem.Costs.default;
      frames = ft;
      page_table_of = (fun _ -> pt);
      address_spaces = (fun () -> [ pt ]);
      rng = Engine.Rng.create seed;
      now = (fun () -> 0);
      reclaim_page = (fun ~pfn:_ -> ());
      evictable = (fun ~pfn:_ ~force:_ -> true);
      free_count = (fun () -> 0);
      total_frames = frames;
      low_watermark = 0;
      high_watermark = 0;
      obs = Obs.disabled;
      prof = Obs.Prof.disabled;
      vmstat = Obs.Vmstat.create ();
    }
  in
  let world =
    {
      env = dummy_env;
      pt;
      frames = ft;
      mem;
      now_ns = 0;
      reclaimed = [];
      reclaimed_vpns = [];
      next_slot = 0;
    }
  in
  let reclaim_page ~pfn =
    match Mem.Frame_table.owner ft pfn with
    | None -> ()
    | Some (_asid, vpn) ->
      let pte = Mem.Page_table.get pt vpn in
      if Mem.Pte.present pte then begin
        let slot = world.next_slot in
        world.next_slot <- slot + 1;
        Mem.Page_table.set pt vpn (Mem.Pte.to_swapped pte ~slot);
        Mem.Frame_table.clear_owner ft ~pfn;
        Mem.Phys_mem.free mem pfn;
        world.reclaimed <- pfn :: world.reclaimed;
        world.reclaimed_vpns <- vpn :: world.reclaimed_vpns
      end
  in
  let env =
    {
      Policy.Policy_intf.costs =
        { Mem.Costs.default with region_size; spatial_scan_max = region_size };
      frames = ft;
      page_table_of =
        (fun asid ->
          if asid <> 0 then invalid_arg "harness: unknown asid";
          pt);
      address_spaces = (fun () -> [ pt ]);
      rng = Engine.Rng.create seed;
      now = (fun () -> world.now_ns);
      reclaim_page;
      evictable = (fun ~pfn:_ ~force:_ -> true);
      free_count = (fun () -> Mem.Phys_mem.free_count mem);
      total_frames = frames;
      low_watermark = Mem.Phys_mem.low_watermark mem;
      high_watermark = Mem.Phys_mem.high_watermark mem;
      obs = Obs.disabled;
      prof = Obs.Prof.disabled;
      vmstat = Obs.Vmstat.create ();
    }
  in
  ignore file_backed;
  world.env <- env;
  world

(* Fault a page in through the policy, like the machine's fault path.
   Returns the pfn used. *)
let map_page world (Policy.Policy_intf.Packed ((module P), p)) ?(write = false)
    ?(speculative = false) ?(file_backed = false) vpn =
  let pfn =
    match Mem.Phys_mem.alloc world.mem with
    | Some pfn -> pfn
    | None ->
      let stats = P.direct_reclaim p ~want:1 in
      if stats.Policy.Policy_intf.freed = 0 then failwith "harness: reclaim failed";
      (match Mem.Phys_mem.alloc world.mem with
      | Some pfn -> pfn
      | None -> failwith "harness: allocation failed after reclaim")
  in
  let old = Mem.Page_table.get world.pt vpn in
  let refault = Mem.Pte.swapped old in
  Mem.Frame_table.set_owner world.frames ~pfn ~asid:0 ~vpn;
  let pte = Mem.Pte.mapped ~pfn ~file_backed in
  let pte = if speculative then pte else Mem.Pte.set_accessed pte in
  let pte = if write then Mem.Pte.set_dirty pte else pte in
  Mem.Page_table.set world.pt vpn pte;
  P.on_page_mapped p ~pfn ~asid:0 ~vpn ~refault ~file_backed ~speculative;
  if not speculative then P.on_page_touched p ~pfn ~write;
  pfn

(* Set the accessed (and optionally dirty) bit like the hardware. *)
let touch world (Policy.Policy_intf.Packed ((module P), p)) ?(write = false) vpn =
  let pte = Mem.Page_table.get world.pt vpn in
  if not (Mem.Pte.present pte) then invalid_arg "harness.touch: page not present";
  let pte = Mem.Pte.set_accessed pte in
  let pte = if write then Mem.Pte.set_dirty pte else pte in
  Mem.Page_table.set world.pt vpn pte;
  P.on_page_touched p ~pfn:(Mem.Pte.pfn pte) ~write

let advance world ns = world.now_ns <- world.now_ns + ns

(* Run every kernel thread until all report sleep (bounded). *)
let run_kthreads world (Policy.Policy_intf.Packed ((module P), p)) =
  let kthreads = P.kthreads p in
  let budget = ref 100_000 in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    continue_ := false;
    List.iter
      (fun kt ->
        match kt.Policy.Policy_intf.kstep () with
        | Policy.Policy_intf.Work w ->
          advance world (max w 1);
          continue_ := true
        | Policy.Policy_intf.Sleep _ | Policy.Policy_intf.Sleep_until_woken -> ())
      kthreads;
    decr budget
  done

let resident world = Mem.Page_table.resident world.pt
