module H = Stats.Histogram

let test_create_validation () =
  Alcotest.check_raises "bad range" (Invalid_argument "Histogram.create: need 0 < lo < hi")
    (fun () -> ignore (H.create ~lo:0.0 ~hi:10.0 ()))

let test_count_and_mean () =
  let h = H.create ~lo:1.0 ~hi:1000.0 () in
  List.iter (H.add h) [ 10.0; 20.0; 30.0 ];
  Alcotest.(check int) "count" 3 (H.count h);
  Alcotest.(check (float 1e-9)) "mean exact" 20.0 (H.mean h);
  Alcotest.(check (float 1e-9)) "min" 10.0 (H.min_seen h);
  Alcotest.(check (float 1e-9)) "max" 30.0 (H.max_seen h)

let test_quantile_accuracy () =
  (* Log-spaced bins give bounded relative error. *)
  let h = H.create ~buckets_per_decade:40 ~lo:1.0 ~hi:1e6 () in
  let rng = Engine.Rng.create 3 in
  let xs = Array.init 50_000 (fun _ -> Engine.Rng.exponential rng ~mean:1000.0 +. 1.0) in
  Array.iter (H.add h) xs;
  let exact = Stats.Percentile.quantile xs 0.99 in
  let approx = H.quantile h 0.99 in
  let rel = Float.abs (approx -. exact) /. exact in
  Alcotest.(check bool) (Printf.sprintf "p99 rel err %.3f < 0.1" rel) true (rel < 0.1)

let test_overflow_underflow () =
  let h = H.create ~lo:10.0 ~hi:100.0 () in
  H.add h 1.0;
  H.add h 1e9;
  Alcotest.(check int) "counted" 2 (H.count h);
  Alcotest.(check (float 1e-9)) "q0 is min" 1.0 (H.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "q1 is max" 1e9 (H.quantile h 1.0)

let test_merge () =
  let h1 = H.create ~lo:1.0 ~hi:100.0 () in
  let h2 = H.create ~lo:1.0 ~hi:100.0 () in
  H.add h1 5.0;
  H.add h2 50.0;
  let m = H.merge h1 h2 in
  Alcotest.(check int) "merged count" 2 (H.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 27.5 (H.mean m)

let test_merge_layout_mismatch () =
  let h1 = H.create ~lo:1.0 ~hi:100.0 () in
  let h2 = H.create ~lo:2.0 ~hi:100.0 () in
  Alcotest.check_raises "layouts differ"
    (Invalid_argument "Histogram.merge: layouts differ") (fun () ->
      ignore (H.merge h1 h2))

let test_bins_sum_to_count () =
  let h = H.create ~lo:1.0 ~hi:1000.0 () in
  let rng = Engine.Rng.create 5 in
  for _ = 1 to 1000 do
    H.add h (1.0 +. Engine.Rng.float rng 998.0)
  done;
  let binned = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (H.bins h) in
  Alcotest.(check int) "all inside" 1000 binned

let test_empty_quantile_raises () =
  let h = H.create ~lo:1.0 ~hi:10.0 () in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.quantile: empty")
    (fun () -> ignore (H.quantile h 0.5))

let test_top_bin_clamped () =
  (* The top inner bin's nominal edge overshoots [hi] whenever
     log10(hi/lo) is not a whole number of bin widths; bounds must clamp
     it so in-range samples never report a bin edge beyond [hi]. *)
  let h = H.create ~buckets_per_decade:3 ~lo:1.0 ~hi:50.0 () in
  H.add h 49.0;
  List.iter
    (fun (lo, hi, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "edge %g <= 50" hi)
        true (hi <= 50.0 +. 1e-9);
      Alcotest.(check bool) "lower below upper" true (lo < hi))
    (H.bins h);
  Alcotest.(check bool) "quantile within range" true (H.quantile h 0.5 <= 50.0)

let prop_quantile_within_range =
  QCheck.Test.make ~name:"quantile within [lo, hi] for in-range samples"
    ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 80) (float_range 2.0 9000.0))
        (int_range 1 25) (float_bound_inclusive 1.0))
    (fun (xs, bpd, q) ->
      let h = H.create ~buckets_per_decade:bpd ~lo:1.0 ~hi:10_000.0 () in
      List.iter (H.add h) xs;
      let v = H.quantile h q in
      v >= 1.0 -. 1e-9 && v <= 10_000.0 +. 1e-9)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantile monotone" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (float_range 1.0 10000.0))
    (fun xs ->
      let h = H.create ~lo:1.0 ~hi:10000.0 () in
      List.iter (H.add h) xs;
      let q25 = H.quantile h 0.25 and q75 = H.quantile h 0.75 in
      q25 <= q75 +. 1e-9)

let () =
  Alcotest.run "histogram"
    [
      ( "unit",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "count and mean" `Quick test_count_and_mean;
          Alcotest.test_case "quantile accuracy" `Quick test_quantile_accuracy;
          Alcotest.test_case "overflow/underflow" `Quick test_overflow_underflow;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "merge mismatch" `Quick test_merge_layout_mismatch;
          Alcotest.test_case "bins sum" `Quick test_bins_sum_to_count;
          Alcotest.test_case "empty quantile" `Quick test_empty_quantile_raises;
          Alcotest.test_case "top bin clamped" `Quick test_top_bin_clamped;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantile_monotone; prop_quantile_within_range ] );
    ]
