(* Guest hook API (Policy_hooks.V1) and its host adapter: version
   negotiation, capability restriction, per-hook cost attribution, and
   jobs-independence of the regret scoreboard built on top of it. *)

module PI = Policy.Policy_intf
module V1 = Policy.Hooks.V1
module H = Testsupport.Harness

(* ------------------------------------------------------------------ *)
(* Version negotiation                                                 *)

let test_negotiate () =
  Alcotest.(check int) "current version" 1 Policy.Hooks.current_version;
  (match V1.negotiate ~guest_version:1 with
  | Ok v -> Alcotest.(check int) "v1 accepted" 1 v
  | Error e -> Alcotest.fail ("v1 rejected: " ^ e));
  (match V1.negotiate ~guest_version:2 with
  | Ok _ -> Alcotest.fail "v2 must be rejected"
  | Error _ -> ());
  match V1.negotiate ~guest_version:0 with
  | Ok _ -> Alcotest.fail "v0 must be rejected"
  | Error _ -> ()

(* A syntactically valid guest demanding a hook API the host does not
   speak: construction must fail before any machine state is touched. *)
module Future_guest = struct
  type t = unit

  let name = "future-guest"
  let api_version = 99
  let init _ = ()
  let on_fault () _ = ()
  let on_access_sample () _ = ()
  let on_scan_tick () = ()
  let evict_request () ~want:_ = []
  let stats () = []
  let gauges () = []
end

module Future_host = Policy.Guest_host.Host (Future_guest)

let test_version_mismatch_fails_at_create () =
  let world = H.make_world () in
  match Future_host.create world.H.env with
  | _ -> Alcotest.fail "host must refuse an unknown hook API version"
  | exception Failure msg ->
    Alcotest.(check bool) "message names the guest" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Capability restriction                                              *)

(* The guest never holds [reclaim_page]; every nomination passes the
   host's [evictable] gate.  Protect one frame behind the gate and
   check the guest can neither free it nor wedge reclaim on it. *)
let test_guest_cannot_free_protected_frame () =
  let frames = 8 and pages = 32 in
  let world = H.make_world ~frames ~pages () in
  let protected_vpn = 0 in
  world.H.env <-
    {
      world.H.env with
      PI.evictable =
        (fun ~pfn ~force:_ ->
          match Mem.Frame_table.owner world.H.frames pfn with
          | Some (_, vpn) -> vpn <> protected_vpn
          | None -> false);
    };
  let packed = Policy.Registry.create Policy.Registry.Sieve world.H.env in
  for vpn = 0 to frames - 1 do
    ignore (H.map_page world packed vpn)
  done;
  (* Every further fault needs a reclaim; the guest's oldest-first
     nominations hit the protected frame early and often. *)
  for vpn = frames to (3 * frames) - 1 do
    ignore (H.map_page world packed vpn)
  done;
  let pte = Mem.Page_table.get world.H.pt protected_vpn in
  Alcotest.(check bool) "protected page still resident" true
    (Mem.Pte.present pte);
  Alcotest.(check bool) "protected page never reclaimed" false
    (List.mem protected_vpn world.H.reclaimed_vpns);
  let (PI.Packed ((module P), p)) = packed in
  let stats = P.stats p in
  Alcotest.(check bool) "gate refusals were recorded" true
    (List.assoc "evict_rejected" stats > 0);
  P.check_invariants p

(* ------------------------------------------------------------------ *)
(* Per-hook cost attribution                                           *)

module Sieve_host = Policy.Guest_host.Host (Policy.Sieve)

let hook_stat stats name = List.assoc name stats

let test_hook_costs_sum_into_cpu_ns () =
  let frames = 16 and pages = 64 in
  let world = H.make_world ~frames ~pages () in
  let costs = world.H.env.PI.costs in
  let p = Sieve_host.create world.H.env in
  let packed = PI.Packed ((module Sieve_host), p) in
  for vpn = 0 to frames - 1 do
    ignore (H.map_page world packed vpn)
  done;
  let rs = Sieve_host.direct_reclaim p ~want:4 in
  Alcotest.(check bool) "reclaim made progress" true
    (rs.PI.freed >= 1);
  let stats = Sieve_host.stats p in
  let fault_calls = hook_stat stats "hook_fault_calls" in
  let fault_ns = hook_stat stats "hook_fault_ns" in
  let evict_calls = hook_stat stats "hook_evict_calls" in
  let evict_ns = hook_stat stats "hook_evict_ns" in
  Alcotest.(check int) "one fault dispatch per mapped page" frames fault_calls;
  Alcotest.(check bool) "at least one evict dispatch" true (evict_calls >= 1);
  (* Floor: every dispatch costs at least the trampoline. *)
  Alcotest.(check bool) "fault ns >= calls * dispatch cost" true
    (fault_ns >= fault_calls * costs.Mem.Costs.hook_dispatch_ns);
  Alcotest.(check bool) "evict ns >= calls * dispatch cost" true
    (evict_ns >= evict_calls * costs.Mem.Costs.hook_dispatch_ns);
  (* Attribution: the reclaim call flushed the deferred fault debt and
     accrued all evict dispatches, so its cpu_ns covers both. *)
  Alcotest.(check bool) "hook ns lands in reclaim cpu_ns" true
    (rs.PI.cpu_ns >= fault_ns + evict_ns);
  (* The gauge total agrees with the per-hook breakdown. *)
  let gauges = Sieve_host.gauges p in
  let total =
    fault_ns + evict_ns
    + hook_stat stats "hook_access_ns"
    + hook_stat stats "hook_tick_ns"
  in
  Alcotest.(check (float 1e-9)) "hook_ns_total gauge" (float_of_int total)
    (List.assoc "hook_ns_total" gauges)

(* Every guest behind the registry dispatches all four hooks once the
   world has seen faults, accessed-bit samples and pressure. *)
let test_all_hooks_fire () =
  List.iter
    (fun spec ->
      let name = Policy.Registry.name spec in
      let frames = 16 and pages = 64 in
      let world = H.make_world ~frames ~pages () in
      let packed = Policy.Registry.create spec world.H.env in
      for vpn = 0 to (2 * frames) - 1 do
        ignore (H.map_page world packed vpn);
        H.advance world 100_000
      done;
      H.run_kthreads world packed;
      let (PI.Packed ((module P), p)) = packed in
      let stats = P.stats p in
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s > 0" name key)
            true
            (hook_stat stats key > 0))
        [
          "hook_fault_calls"; "hook_access_calls"; "hook_tick_calls";
          "hook_evict_calls";
        ];
      Alcotest.(check bool) (name ^ ": residency bounded") true
        (H.resident world <= frames);
      P.check_invariants p)
    Policy.Registry.guest_specs

(* ------------------------------------------------------------------ *)
(* Regret scoreboard determinism                                       *)

module R = Repro_core.Runner
module Regret = Repro_core.Regret

let test_regret_jobs_identical () =
  let profile = { R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 } in
  let workloads = [ R.Tpch ]
  and policies = [ Policy.Registry.Clock; Policy.Registry.Sieve ]
  and ratios = [ 0.5 ] in
  let compute jobs =
    let ctx = R.make_ctx ~profile ~jobs () in
    Regret.compute ctx ~workloads ~policies ~ratios ~swap:R.Ssd
  in
  let serial = compute 1 and parallel = compute 4 in
  Alcotest.(check int) "cell count" (List.length serial)
    (List.length parallel);
  Alcotest.(check bool) "cells byte-identical across jobs" true
    (serial = parallel);
  List.iter
    (fun (c : Regret.cell) ->
      Alcotest.(check bool) "no failed trials" true (c.Regret.c_failed = 0);
      Alcotest.(check bool) "regret is finite" true
        (Float.is_finite c.Regret.c_regret))
    serial

let () =
  Alcotest.run "hooks"
    [
      ( "api",
        [
          Alcotest.test_case "negotiate" `Quick test_negotiate;
          Alcotest.test_case "version mismatch fails at create" `Quick
            test_version_mismatch_fails_at_create;
        ] );
      ( "capability",
        [
          Alcotest.test_case "guest cannot free protected frame" `Quick
            test_guest_cannot_free_protected_frame;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "hook costs sum into cpu_ns" `Quick
            test_hook_costs_sum_into_cpu_ns;
          Alcotest.test_case "all hooks fire for every guest" `Quick
            test_all_hooks_fire;
        ] );
      ( "regret",
        [
          Alcotest.test_case "jobs 1 vs 4 identical" `Quick
            test_regret_jobs_identical;
        ] );
    ]
