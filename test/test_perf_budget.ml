(* Allocation budget for the fault/reclaim hot path (tier-1).

   Runs a dense, deterministic fault burst under each builtin policy
   and asserts minor-heap words allocated per fault stay under a stated
   ceiling.  The engine's hot path (Machine.handle_fault, Swap_manager,
   Event_queue, the flattened policy scan loops) is written to allocate
   nothing per fault in steady state; what remains is workload chunk
   generation and per-trial setup, amortized across the burst.  The
   ceilings carry ~3x headroom over measured native-code numbers so the
   test is a regression tripwire, not a vice — if it fires, something
   reintroduced per-fault allocation (a closure, an option, a list) on
   the hot path.

   Budgets are per (major + minor) fault, measured via Gc.minor_words
   around Machine.run, exactly like bench/main.ml's engine harness. *)

let burst_pages = 4096
let burst_passes = 3

let words_per_fault policy =
  let w =
    Workload.Trace.of_page_lists ~footprint:burst_pages
      (List.init burst_passes (fun _ -> Array.init burst_pages (fun i -> i)))
  in
  let cfg =
    {
      (Repro_core.Machine.default_config ~capacity_frames:(burst_pages / 2)
         ~seed:42)
      with
      Repro_core.Machine.kthread_jitter_ns = 0;
    }
  in
  let mw0 = Gc.minor_words () in
  let r =
    Repro_core.Machine.run cfg
      ~policy:(Policy.Registry.create policy)
      ~workload:(Workload.Chunk.Packed ((module Workload.Trace), w))
  in
  let mw1 = Gc.minor_words () in
  let faults =
    max 1 (r.Repro_core.Machine.major_faults + r.Repro_core.Machine.minor_faults)
  in
  (* Sanity: the burst must actually thrash (readahead converts most
     re-faults into minor faults, so the floor is on the total). *)
  Alcotest.(check bool)
    "burst produced major faults" true
    (r.Repro_core.Machine.major_faults > 0 && faults > burst_pages);
  if Sys.getenv_opt "PERF_BUDGET_VERBOSE" <> None then
    Printf.eprintf "%-12s major %6d minor %6d\n%!"
      (Policy.Registry.name policy)
      r.Repro_core.Machine.major_faults r.Repro_core.Machine.minor_faults;
  (mw1 -. mw0) /. float_of_int faults

let check_budget (spec, ceiling) () =
  let words = words_per_fault spec in
  if Sys.getenv_opt "PERF_BUDGET_VERBOSE" <> None then
    Printf.eprintf "%-12s %8.2f words/fault (budget %.0f)\n%!"
      (Policy.Registry.name spec) words ceiling;
  if words >= ceiling then
    Alcotest.failf "%s allocates %.1f words/fault (budget %.0f)"
      (Policy.Registry.name spec) words ceiling

(* The flattened builtins measure ~60 words/fault on this burst (nearly
   all of it amortized machine/workload setup — the scan loops proper
   are allocation-free); the MG-LRU variants add the aging walk (~75);
   random samples candidate sets (~105).  The SDK guests (s3-fifo,
   sieve, perceptron) funnel through the Guest_host trampoline whose V1
   hook API returns eviction batches as lists by design, so they get a
   wider — but still bounded — budget (~1220 measured).  Every ceiling
   is ~3x the measured native number. *)
let budgets =
  [
    (Policy.Registry.Clock, 180.);
    (Policy.Registry.Fifo, 180.);
    (Policy.Registry.Lru_exact, 180.);
    (Policy.Registry.Random, 320.);
    (Policy.Registry.Mglru_default, 220.);
    (Policy.Registry.Gen14, 220.);
    (Policy.Registry.Scan_all, 220.);
    (Policy.Registry.Scan_none, 220.);
    (Policy.Registry.S3_fifo, 3600.);
    (Policy.Registry.Sieve, 3600.);
    (Policy.Registry.Perceptron, 3600.);
  ]

let () =
  Alcotest.run "perf_budget"
    [
      ( "allocs-per-fault",
        List.map
          (fun (spec, ceiling) ->
            Alcotest.test_case (Policy.Registry.name spec) `Quick
              (check_budget (spec, ceiling)))
          budgets );
    ]
