(* Figure-harness data checks at the fast profile (the printed tables
   are exercised by the bench; here we validate the returned data). *)

let ctx =
  Repro_core.Runner.make_ctx
    ~profile:{ Repro_core.Runner.trials = 1; ycsb_trials = 1; fast = true; scale = 1 }
    ()

let test_cell_metrics () =
  let c =
    Repro_core.Figures.cell ctx ~workload:Repro_core.Runner.Tpch
      ~policy:Policy.Registry.Clock ~ratio:0.5 ~swap:Repro_core.Runner.Ssd
  in
  Alcotest.(check bool) "perf positive" true (c.Repro_core.Figures.perf > 0.0);
  Alcotest.(check bool) "faults positive" true (c.Repro_core.Figures.mean_faults > 0.0);
  Alcotest.(check int) "one trial" 1 (List.length c.Repro_core.Figures.results)

let test_ycsb_cell_uses_latency () =
  let c =
    Repro_core.Figures.cell ctx
      ~workload:(Repro_core.Runner.Ycsb Workload.Ycsb.C)
      ~policy:Policy.Registry.Clock ~ratio:0.5 ~swap:Repro_core.Runner.Ssd
  in
  (* The fig-1 metric for YCSB is mean request latency in ns: far larger
     than any plausible runtime-in-seconds number. *)
  Alcotest.(check bool) "metric is a latency" true (c.Repro_core.Figures.perf > 1_000.0)

let test_fig1_data () =
  let data = Repro_core.Figures.fig1 ctx in
  Alcotest.(check int) "five workloads" 5 (List.length data);
  List.iter
    (fun (name, perf, faults) ->
      Alcotest.(check bool) (name ^ " perf ratio sane") true (perf > 0.2 && perf < 5.0);
      Alcotest.(check bool) (name ^ " fault ratio sane") true
        (faults > 0.2 && faults < 5.0))
    data

let test_fig4_data () =
  let data = Repro_core.Figures.fig4 ctx in
  (* 5 workloads x 5 variants *)
  Alcotest.(check int) "rows" 25 (List.length data);
  (* The default-MG-LRU rows normalize to exactly 1. *)
  List.iter
    (fun (_w, variant, perf, _faults) ->
      if variant = "mglru" then
        Alcotest.(check (float 1e-9)) "self-normalized" 1.0 perf)
    data

let test_fig9_fig10_data () =
  let perf = Repro_core.Figures.fig9 ctx in
  let faults = Repro_core.Figures.fig10 ctx in
  Alcotest.(check int) "perf rows" 30 (List.length perf);
  Alcotest.(check int) "fault rows" 30 (List.length faults);
  List.iter
    (fun (_w, p, v) ->
      if p = "mglru" then Alcotest.(check (float 1e-9)) "base" 1.0 v)
    perf

let test_fig11_data () =
  let data = Repro_core.Figures.fig11 ctx in
  Alcotest.(check int) "five workloads" 5 (List.length data);
  List.iter
    (fun (name, rt, faults) ->
      Alcotest.(check bool) (name ^ ": zram faster") true (rt < 1.0);
      Alcotest.(check bool) (name ^ ": faults not reduced") true (faults > 0.8))
    data

let test_cells_of_figure () =
  List.iter
    (fun n ->
      let cells = Repro_core.Figures.cells_of_figure n in
      Alcotest.(check bool)
        (Printf.sprintf "figure %d has cells" n)
        true
        (List.length cells > 0))
    Repro_core.Figures.all_figures

let test_run_dispatch_bounds () =
  Alcotest.check_raises "figure 0" (Invalid_argument "Figures.run: no figure 0")
    (fun () -> Repro_core.Figures.run ctx 0);
  Alcotest.check_raises "figure 13" (Invalid_argument "Figures.run: no figure 13")
    (fun () -> Repro_core.Figures.run ctx 13)

let test_csv_quoting () =
  let path = Filename.temp_file "csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro_core.Csv_export.write ~path ~header:[ "a"; "b" ]
        [ [ "x,y"; "he said \"hi\"" ]; [ "plain"; "1" ] ];
      let inc = open_in path in
      let l1 = input_line inc in
      let l2 = input_line inc in
      let l3 = input_line inc in
      let lines = [ l1; l2; l3 ] in
      close_in inc;
      Alcotest.(check (list string))
        "quoted correctly"
        [ "a,b"; "\"x,y\",\"he said \"\"hi\"\"\""; "plain,1" ]
        lines)

let () =
  Alcotest.run "figures"
    [
      ( "data",
        [
          Alcotest.test_case "cell metrics" `Slow test_cell_metrics;
          Alcotest.test_case "ycsb latency metric" `Slow test_ycsb_cell_uses_latency;
          Alcotest.test_case "fig1" `Slow test_fig1_data;
          Alcotest.test_case "fig4" `Slow test_fig4_data;
          Alcotest.test_case "fig9/fig10" `Slow test_fig9_fig10_data;
          Alcotest.test_case "fig11" `Slow test_fig11_data;
          Alcotest.test_case "cells_of_figure" `Quick test_cells_of_figure;
          Alcotest.test_case "dispatch bounds" `Quick test_run_dispatch_bounds;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
        ] );
    ]
