module V = Obs.Vmstat
module W = Mem.Workingset
module M = Repro_core.Machine
module C = Workload.Chunk
module R = Repro_core.Runner

(* ------------------------------------------------------------------ *)
(* Counter registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_registry_basics () =
  let v = V.create () in
  Alcotest.(check int) "fresh counter" 0 (V.get v V.pgfault);
  V.incr v V.pgfault;
  V.incr v V.pgfault;
  V.add v V.pgscan_direct 5;
  Alcotest.(check int) "incr" 2 (V.get v V.pgfault);
  Alcotest.(check int) "add" 5 (V.get v V.pgscan_direct);
  V.add v V.pgscan_direct 0;
  V.add v V.pgscan_direct (-3);
  Alcotest.(check int) "non-positive add is a no-op" 5
    (V.get v V.pgscan_direct);
  Alcotest.(check int) "one name per counter" V.nr_counters
    (Array.length V.names);
  Alcotest.(check string) "kernel names" "workingset_refault"
    (V.name V.workingset_refault);
  Alcotest.(check bool) "indices distinct" true
    (List.length
       (List.sort_uniq compare
          [
            V.pgfault; V.pgmajfault; V.pgscan_kswapd; V.pgscan_direct;
            V.pgsteal; V.pgactivate; V.pgdeactivate; V.pswpin; V.pswpout;
            V.oom_kill; V.workingset_refault; V.workingset_activate;
            V.workingset_restore; V.workingset_shadow_miss;
            V.mglru_aging_passes; V.mglru_promoted; V.mglru_tier_protected;
          ])
    = V.nr_counters)

let test_dist_buckets () =
  Alcotest.(check int) "0 in bucket 0" 0 (V.dist_bucket 0);
  Alcotest.(check int) "1 in bucket 0" 0 (V.dist_bucket 1);
  Alcotest.(check int) "2 in bucket 1" 1 (V.dist_bucket 2);
  Alcotest.(check int) "3 in bucket 1" 1 (V.dist_bucket 3);
  Alcotest.(check int) "4 in bucket 2" 2 (V.dist_bucket 4);
  Alcotest.(check int) "2^i lower bounds" 10 (V.dist_bucket 1024);
  Alcotest.(check int) "2^(i+1)-1 upper bounds" 10 (V.dist_bucket 2047);
  Alcotest.(check int) "huge distances clamp to the last bucket"
    (V.dist_buckets - 1)
    (V.dist_bucket max_int)

let test_capture_merge_refaults () =
  let v = V.create () in
  V.incr v V.pgsteal;
  V.note_refault_distance v 3;
  V.note_refault_distance v 1000;
  let c = V.capture v in
  Alcotest.(check int) "capture copies counters" 1 c.V.counters.(V.pgsteal);
  Alcotest.(check int) "refaults = histogram mass" 2 (V.refaults c);
  V.incr v V.pgsteal;
  Alcotest.(check int) "capture is a snapshot" 1 c.V.counters.(V.pgsteal);
  let m = V.merge [ c; c; V.empty_capture ] in
  Alcotest.(check int) "merge sums counters" 2 m.V.counters.(V.pgsteal);
  Alcotest.(check int) "merge sums buckets" 4 (V.refaults m);
  Alcotest.(check int) "empty merge" 0 (V.refaults (V.merge []))

let test_codec () =
  let v = V.create () in
  V.incr v V.pgfault;
  V.add v V.mglru_promoted 123456;
  V.note_refault_distance v 7;
  let c = V.capture v in
  let c' = V.decode_capture (V.encode_capture c) in
  Alcotest.(check (array int)) "counters roundtrip" c.V.counters c'.V.counters;
  Alcotest.(check (array int)) "buckets roundtrip" c.V.refault_dist
    c'.V.refault_dist;
  (* A capture from an older build with fewer counters zero-fills. *)
  let old = V.decode_capture "v1:4;2|1;1" in
  Alcotest.(check int) "old first counter" 4 old.V.counters.(0);
  Alcotest.(check int) "tail zero-filled" 0
    old.V.counters.(V.nr_counters - 1);
  Alcotest.(check int) "old buckets kept" 2 (V.refaults old);
  List.iter
    (fun s ->
      match V.decode_capture s with
      | _ -> Alcotest.failf "decoded malformed %S" s
      | exception Failure _ -> ())
    [ ""; "v2:1|1"; "v1:1;2;3"; "v1:1;x|2" ]

let codec_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"vmstat codec roundtrips any capture"
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.return V.nr_counters) (int_bound 1_000_000))
        (array_of_size (QCheck.Gen.return V.dist_buckets) (int_bound 1_000)))
    (fun (counters, refault_dist) ->
      let c = { V.counters; refault_dist } in
      let c' = V.decode_capture (V.encode_capture c) in
      c.V.counters = c'.V.counters && c.V.refault_dist = c'.V.refault_dist)

(* ------------------------------------------------------------------ *)
(* Workingset shadow entries                                           *)
(* ------------------------------------------------------------------ *)

let test_workingset_classify () =
  let ws = W.create ~capacity:4 in
  let tok = W.note_eviction ws ~was_active:true in
  Alcotest.(check bool) "token is not no_shadow" true (tok <> W.no_shadow);
  Alcotest.(check bool) "was_active packed" true (W.shadow_was_active tok);
  (* Three other evictions happen before the refault. *)
  for _ = 1 to 3 do
    ignore (W.note_eviction ws ~was_active:false)
  done;
  let r = W.classify ws ~shadow:tok in
  Alcotest.(check int) "distance counts intervening evictions" 3 r.W.distance;
  Alcotest.(check bool) "within capacity activates" true r.W.activated;
  Alcotest.(check bool) "restore follows was_active" true r.W.restored;
  (* A colder page: more evictions than capacity in between. *)
  let tok2 = W.note_eviction ws ~was_active:false in
  for _ = 1 to 5 do
    ignore (W.note_eviction ws ~was_active:false)
  done;
  let r2 = W.classify ws ~shadow:tok2 in
  Alcotest.(check int) "distance 5" 5 r2.W.distance;
  Alcotest.(check bool) "beyond capacity does not activate" false
    r2.W.activated;
  Alcotest.(check bool) "not restored" false r2.W.restored

(* The defining invariant, against a brute-force oracle: the distance
   is exactly the number of other evictions between a page's eviction
   and its refault, whatever the interleaving. *)
let workingset_distance_prop =
  QCheck.Test.make ~count:300
    ~name:"refault distance == evictions between eviction and refault"
    (* Each entry: evictions before ours, then evictions before the
       refault, plus the activation capacity. *)
    QCheck.(triple (int_bound 50) (int_bound 200) (int_range 1 64))
    (fun (before, between, capacity) ->
      let ws = W.create ~capacity in
      for _ = 1 to before do
        ignore (W.note_eviction ws ~was_active:false)
      done;
      let tok = W.note_eviction ws ~was_active:true in
      for _ = 1 to between do
        ignore (W.note_eviction ws ~was_active:false)
      done;
      let r = W.classify ws ~shadow:tok in
      r.W.distance = between
      && r.W.activated = (between <= capacity)
      && r.W.restored)

let test_page_table_shadows () =
  let pt = Mem.Page_table.create ~region_size:16 ~asid:0 ~pages:64 () in
  Alcotest.(check int) "fresh slot has no shadow" W.no_shadow
    (Mem.Page_table.shadow pt 5);
  (* Clearing before any store must not allocate or fail. *)
  Mem.Page_table.clear_shadow pt 5;
  Mem.Page_table.set_shadow pt 5 42;
  Mem.Page_table.set_shadow pt 63 7;
  Alcotest.(check int) "stored" 42 (Mem.Page_table.shadow pt 5);
  Alcotest.(check int) "independent slots" 7 (Mem.Page_table.shadow pt 63);
  Mem.Page_table.clear_shadow pt 5;
  Alcotest.(check int) "cleared" W.no_shadow (Mem.Page_table.shadow pt 5);
  Alcotest.(check int) "other slot survives" 7 (Mem.Page_table.shadow pt 63)

(* ------------------------------------------------------------------ *)
(* Machine integration                                                 *)
(* ------------------------------------------------------------------ *)

let trace_workload ?(footprint = 64) lists =
  let w = Workload.Trace.of_page_lists ~footprint lists in
  C.Packed ((module Workload.Trace), w)

let run ?(vmstat = false) ?damon ?(capacity = 16) ~policy lists =
  M.run
    {
      (M.default_config ~capacity_frames:capacity ~seed:7) with
      M.kthread_jitter_ns = 0;
      vmstat;
      damon;
    }
    ~policy:(Policy.Registry.create policy)
    ~workload:(trace_workload lists)

let thrash = [ Array.init 32 (fun i -> i); Array.init 32 (fun i -> i) ]

let test_machine_capture_gating () =
  let off = run ~policy:Policy.Registry.Clock thrash in
  Alcotest.(check bool) "off: no capture" true (off.M.vmstat = None);
  Alcotest.(check bool) "off: no heatmap" true (off.M.heatmap = None);
  let on = run ~vmstat:true ~policy:Policy.Registry.Clock thrash in
  match on.M.vmstat with
  | None -> Alcotest.fail "on: capture missing"
  | Some c ->
    (* Observation only: the simulation is unchanged. *)
    Alcotest.(check int) "same runtime" off.M.runtime_ns on.M.runtime_ns;
    Alcotest.(check int) "same majors" off.M.major_faults on.M.major_faults;
    Alcotest.(check int) "pgmajfault mirrors the result" on.M.major_faults
      c.V.counters.(V.pgmajfault);
    Alcotest.(check bool) "faults include minors" true
      (c.V.counters.(V.pgfault)
      >= on.M.minor_faults + on.M.major_faults);
    Alcotest.(check bool) "thrash steals pages" true
      (c.V.counters.(V.pgsteal) > 0);
    (* Every classified refault lands one histogram sample. *)
    Alcotest.(check int) "histogram mass = workingset_refault"
      c.V.counters.(V.workingset_refault)
      (V.refaults c);
    Alcotest.(check int) "shadows never torn down here" 0
      c.V.counters.(V.workingset_shadow_miss)

let test_machine_policy_split () =
  let cap policy =
    match (run ~vmstat:true ~policy thrash).M.vmstat with
    | Some c -> c
    | None -> Alcotest.fail "capture missing"
  in
  let clock = cap Policy.Registry.Clock in
  let mglru = cap Policy.Registry.Mglru_default in
  (* The paper's split: Clock churns the active/inactive boundary
     (pgactivate/pgdeactivate), MG-LRU promotes across generations. *)
  Alcotest.(check int) "clock has no mglru counters" 0
    (clock.V.counters.(V.mglru_promoted)
    + clock.V.counters.(V.mglru_aging_passes));
  Alcotest.(check int) "mglru has no clock ping-pongs" 0
    (mglru.V.counters.(V.pgactivate) + mglru.V.counters.(V.pgdeactivate));
  Alcotest.(check bool) "mglru ages" true
    (mglru.V.counters.(V.mglru_aging_passes) > 0)

let test_machine_damon () =
  let r =
    run ~damon:Mem.Damon.default_config ~policy:Policy.Registry.Clock thrash
  in
  let plain = run ~policy:Policy.Registry.Clock thrash in
  Alcotest.(check int) "monitoring does not perturb" plain.M.runtime_ns
    r.M.runtime_ns;
  match r.M.heatmap with
  | None -> Alcotest.fail "heatmap missing"
  | Some { Mem.Damon.rows } ->
    Alcotest.(check bool) "rows recorded" true (Array.length rows > 0);
    let times = ref [] in
    Array.iter
      (fun (w : Mem.Damon.row) ->
        Alcotest.(check bool) "region within the space" true
          (w.Mem.Damon.w_start >= 0
          && w.Mem.Damon.w_pages > 0
          && w.Mem.Damon.w_start + w.Mem.Damon.w_pages <= 64);
        Alcotest.(check bool) "accessed bounded by region size" true
          (w.Mem.Damon.w_accessed >= 0
          && w.Mem.Damon.w_accessed <= w.Mem.Damon.w_pages);
        if not (List.mem w.Mem.Damon.w_t_ns !times) then
          times := w.Mem.Damon.w_t_ns :: !times)
      rows;
    (* Each tick's regions tile the whole address space. *)
    List.iter
      (fun t ->
        let covered =
          Array.fold_left
            (fun acc (w : Mem.Damon.row) ->
              if w.Mem.Damon.w_t_ns = t then acc + w.Mem.Damon.w_pages
              else acc)
            0 rows
        in
        Alcotest.(check int) "full coverage per tick" 64 covered)
      !times

(* ------------------------------------------------------------------ *)
(* Runner integration: captures are merged deterministically.          *)
(* ------------------------------------------------------------------ *)

let fast_profile = { R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }

let cell_caps ~jobs =
  let ctx = R.make_ctx ~profile:fast_profile ~jobs ~vmstat:true () in
  ignore
    (R.try_cell ctx ~workload:R.Tpch ~policy:Policy.Registry.Clock ~ratio:0.5
       ~swap:R.Ssd);
  List.map
    (fun (e, c) -> (R.exp_name e, V.encode_capture c))
    (R.vmstat_cells ctx)

let test_runner_jobs_identity () =
  let serial = cell_caps ~jobs:1 in
  let parallel = cell_caps ~jobs:4 in
  Alcotest.(check int) "one cell" 1 (List.length serial);
  Alcotest.(check bool) "captures non-trivial" true
    (V.refaults (V.decode_capture (snd (List.hd serial))) > 0);
  Alcotest.(check (list (pair string string))) "jobs=1 == jobs=4" serial
    parallel

let () =
  Alcotest.run "vmstat"
    [
      ( "registry",
        [
          Alcotest.test_case "basics" `Quick test_registry_basics;
          Alcotest.test_case "distance buckets" `Quick test_dist_buckets;
          Alcotest.test_case "capture/merge/refaults" `Quick
            test_capture_merge_refaults;
          Alcotest.test_case "codec" `Quick test_codec;
          QCheck_alcotest.to_alcotest codec_roundtrip_prop;
        ] );
      ( "workingset",
        [
          Alcotest.test_case "classify" `Quick test_workingset_classify;
          QCheck_alcotest.to_alcotest workingset_distance_prop;
          Alcotest.test_case "page-table shadows" `Quick
            test_page_table_shadows;
        ] );
      ( "machine",
        [
          Alcotest.test_case "capture gating" `Quick
            test_machine_capture_gating;
          Alcotest.test_case "clock/mglru counter split" `Quick
            test_machine_policy_split;
          Alcotest.test_case "damon heatmap" `Quick test_machine_damon;
        ] );
      ( "runner",
        [
          Alcotest.test_case "jobs identity" `Slow test_runner_jobs_identity;
        ] );
    ]
