module SM = Swapdev.Swap_manager

let make () =
  let dev = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  SM.create ~device:dev ~seed:9 ()

(* swap_out on a fault-free device always yields a slot. *)
let out_exn m ~now ~klass ~page_key =
  match SM.swap_out m ~now ~klass ~page_key with
  | Some slot, io -> (slot, io)
  | None, _ -> Alcotest.fail "swap_out failed on a fault-free device"

let test_out_in_release () =
  let m = make () in
  let slot, io = out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:5 in
  Alcotest.(check bool) "write completion in future" true (io.SM.finish_ns > 0);
  Alcotest.(check bool) "no retries needed" true (io.SM.io_retries = 0 && not io.SM.failed);
  Alcotest.(check bool) "slot in use" true (SM.slot_in_use m slot);
  Alcotest.(check int) "used" 1 (SM.used_slots m);
  (* swap_in keeps the slot (swap cache) *)
  let io2 = SM.swap_in m ~now:100 ~slot in
  Alcotest.(check bool) "read succeeded" false io2.SM.failed;
  Alcotest.(check bool) "still in use" true (SM.slot_in_use m slot);
  Alcotest.(check int) "ins" 1 (SM.swap_ins m);
  SM.release m ~slot;
  Alcotest.(check bool) "released" false (SM.slot_in_use m slot);
  Alcotest.(check int) "used back to zero" 0 (SM.used_slots m)

let test_slot_reuse () =
  let m = make () in
  let s1, _ = out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:1 in
  SM.release m ~slot:s1;
  let s2, _ = out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:2 in
  Alcotest.(check int) "freed slot reused" s1 s2

let test_bad_slot_ops () =
  let m = make () in
  Alcotest.check_raises "swap_in bad slot"
    (Invalid_argument "Swap_manager.swap_in: slot not in use") (fun () ->
      ignore (SM.swap_in m ~now:0 ~slot:3));
  Alcotest.check_raises "release bad slot"
    (Invalid_argument "Swap_manager.release: slot not in use") (fun () ->
      SM.release m ~slot:3)

let test_double_release () =
  let m = make () in
  let slot, _ = out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:1 in
  SM.release m ~slot;
  Alcotest.check_raises "double release rejected"
    (Invalid_argument "Swap_manager.release: slot not in use") (fun () ->
      SM.release m ~slot)

let test_peak_tracking () =
  let m = make () in
  let slots =
    List.init 5 (fun i ->
        fst (out_exn m ~now:0 ~klass:Swapdev.Compress.Kv_item ~page_key:i))
  in
  List.iter (fun slot -> SM.release m ~slot) slots;
  Alcotest.(check int) "peak" 5 (SM.peak_slots m);
  Alcotest.(check int) "now zero" 0 (SM.used_slots m)

let test_compressed_accounting () =
  let m = make () in
  let slot, _ = out_exn m ~now:0 ~klass:Swapdev.Compress.Columnar ~page_key:7 in
  let bytes = SM.compressed_bytes m in
  Alcotest.(check bool) "positive and under a page" true (bytes > 0.0 && bytes < 4096.0);
  SM.release m ~slot;
  Alcotest.(check (float 1e-6)) "empty pool" 0.0 (SM.compressed_bytes m)

let test_many_slots_grow () =
  let m = make () in
  for i = 0 to 4999 do
    ignore (SM.swap_out m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:i)
  done;
  Alcotest.(check int) "all live" 5000 (SM.used_slots m);
  Alcotest.(check int) "outs counted" 5000 (SM.swap_outs m)

(* The slot array starts at 1024 entries; crossing the boundary must not
   lose or corrupt accounting for slots on either side. *)
let test_grow_boundary () =
  let m = make () in
  let slots =
    Array.init 1025 (fun i ->
        fst (out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:i))
  in
  Alcotest.(check int) "1025 live across the boundary" 1025 (SM.used_slots m);
  Alcotest.(check bool) "slot 1023 live" true (SM.slot_in_use m slots.(1023));
  Alcotest.(check bool) "slot 1024 live" true (SM.slot_in_use m slots.(1024));
  SM.release m ~slot:slots.(1023);
  SM.release m ~slot:slots.(1024);
  Alcotest.(check bool) "1023 released" false (SM.slot_in_use m slots.(1023));
  Alcotest.(check bool) "1024 released" false (SM.slot_in_use m slots.(1024));
  Alcotest.(check int) "used tracks releases" 1023 (SM.used_slots m);
  (* both freed slots come back before the array grows again *)
  let s1, _ = out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:2000 in
  let s2, _ = out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:2001 in
  Alcotest.(check bool) "freed boundary slots reused" true
    (List.sort compare [ s1; s2 ] = List.sort compare [ slots.(1023); slots.(1024) ])

let prop_used_never_negative =
  QCheck.Test.make ~name:"slot accounting stays consistent" ~count:100
    QCheck.(list bool)
    (fun ops ->
      let m = make () in
      let live = ref [] in
      List.iter
        (fun out ->
          if out then
            live :=
              fst (out_exn m ~now:0 ~klass:Swapdev.Compress.Numeric ~page_key:0)
              :: !live
          else
            match !live with
            | slot :: rest ->
              SM.release m ~slot;
              live := rest
            | [] -> ())
        ops;
      SM.used_slots m = List.length !live)

let () =
  Alcotest.run "swap_manager"
    [
      ( "unit",
        [
          Alcotest.test_case "out/in/release" `Quick test_out_in_release;
          Alcotest.test_case "slot reuse" `Quick test_slot_reuse;
          Alcotest.test_case "bad slot ops" `Quick test_bad_slot_ops;
          Alcotest.test_case "double release" `Quick test_double_release;
          Alcotest.test_case "peak tracking" `Quick test_peak_tracking;
          Alcotest.test_case "compressed accounting" `Quick test_compressed_accounting;
          Alcotest.test_case "many slots" `Quick test_many_slots_grow;
          Alcotest.test_case "grow at 1024 boundary" `Quick test_grow_boundary;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_used_never_negative ]);
    ]
