(* Journal unit tests: record framing and checksums, bit-exact result
   round-trips, torn-tail detection, last-wins dedup and resume-time
   compaction. *)

module J = Repro_core.Journal
module R = Repro_core.Runner
module M = Repro_core.Machine

let fast_profile = { R.trials = 1; ycsb_trials = 1; fast = true; scale = 1 }

(* One real trial result, so the round-trip test covers every field the
   simulator actually produces (latency arrays included). *)
let sample_result =
  lazy
    (R.run_exp
       (R.make_ctx ~profile:fast_profile ())
       {
         R.workload = R.Ycsb Workload.Ycsb.A;
         policy = Policy.Registry.Clock;
         ratio = 0.5;
         swap = R.Ssd;
         trial = 0;
       })

let ok_record () =
  let r = Lazy.force sample_result in
  {
    J.key = "ycsb-a/clock/0.5/ssd/t0";
    status = J.Trial_ok;
    reason = "";
    result = Some { r with M.trace = None };
  }

let check_round_trip name rec_ =
  match J.record_of_line (J.record_to_line rec_) with
  | Error msg -> Alcotest.failf "%s: decode failed: %s" name msg
  | Ok got ->
    Alcotest.(check string) (name ^ " key") rec_.J.key got.J.key;
    Alcotest.(check string)
      (name ^ " status")
      (J.status_name rec_.J.status)
      (J.status_name got.J.status);
    Alcotest.(check string) (name ^ " reason") rec_.J.reason got.J.reason;
    Alcotest.(check bool) (name ^ " full record equal") true (got = rec_)

let test_ok_round_trip () =
  let rec_ = ok_record () in
  check_round_trip "ok" rec_;
  (* The success payload must round-trip bit-exactly: resumed sweeps
     feed these numbers back into byte-identical reports. *)
  match J.record_of_line (J.record_to_line rec_) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok { J.result = None; _ } -> Alcotest.fail "ok record lost its result"
  | Ok { J.result = Some got; _ } ->
    let want = Option.get rec_.J.result in
    Alcotest.(check int) "runtime_ns" want.M.runtime_ns got.M.runtime_ns;
    Alcotest.(check int) "major_faults" want.M.major_faults got.M.major_faults;
    Alcotest.(check string) "policy_name" want.M.policy_name got.M.policy_name;
    Alcotest.(check bool) "read latencies bit-exact" true
      (want.M.read_latencies = got.M.read_latencies);
    Alcotest.(check bool) "write latencies bit-exact" true
      (want.M.write_latencies = got.M.write_latencies);
    Alcotest.(check bool) "policy stats equal" true
      (want.M.policy_stats = got.M.policy_stats);
    Alcotest.(check bool) "trace never journaled" true (got.M.trace = None)

let test_awkward_floats_round_trip () =
  (* %h framing must survive values that decimal printing mangles. *)
  let r = Lazy.force sample_result in
  let rec_ =
    {
      J.key = "k";
      status = J.Trial_ok;
      reason = "";
      result =
        Some
          {
            r with
            M.read_latencies = [| 0.1; 1e-300; 1.5e300; 0.0; -0.0; 1.0 /. 3.0 |];
            write_latencies = [||];
            trace = None;
          };
    }
  in
  match J.record_of_line (J.record_to_line rec_) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok { J.result = Some got; _ } ->
    Array.iteri
      (fun i want ->
        Alcotest.(check bool)
          (Printf.sprintf "lat[%d] bit-exact" i)
          true
          (Int64.equal (Int64.bits_of_float want)
             (Int64.bits_of_float got.M.read_latencies.(i))))
      (Option.get rec_.J.result).M.read_latencies;
    Alcotest.(check int) "empty array survives" 0
      (Array.length got.M.write_latencies)
  | Ok _ -> Alcotest.fail "result lost"

let test_failure_round_trips () =
  check_round_trip "failed"
    {
      J.key = "tpch/crash-test/0.5/ssd/t0";
      status = J.Trial_failed;
      reason = "Failure(\"crash-test policy: deliberate failure\")";
      result = None;
    };
  check_round_trip "timeout"
    {
      J.key = "pagerank/mglru/0.9/zram/t3";
      status = J.Trial_timeout;
      reason = "exceeded 0.5s wall-clock trial deadline";
      result = None;
    }

let test_checksum_detects_corruption () =
  let line = J.record_to_line (ok_record ()) in
  (* Flip one payload byte: the checksum must catch it. *)
  let corrupt = Bytes.of_string line in
  let i = String.length line - 5 in
  Bytes.set corrupt i (if Bytes.get corrupt i = '0' then '1' else '0');
  (match J.record_of_line (Bytes.to_string corrupt) with
  | Ok _ -> Alcotest.fail "accepted a corrupted record"
  | Error msg ->
    Alcotest.(check bool) "reports checksum" true
      (String.length msg > 0));
  (* A torn (truncated) line must also be rejected at every cut. *)
  List.iter
    (fun keep ->
      match J.record_of_line (String.sub line 0 keep) with
      | Ok _ -> Alcotest.failf "accepted a %d-byte torn record" keep
      | Error _ -> ())
    [ 0; 1; 10; 41; 42; 60; String.length line - 1 ]

let with_temp_journal f =
  let path = Filename.temp_file "journal_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let append_raw path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let failed_record key =
  { J.key; status = J.Trial_failed; reason = "boom"; result = None }

let test_append_load_cycle () =
  with_temp_journal (fun path ->
      let t, loaded = J.open_ ~path ~resume:false in
      Alcotest.(check int) "fresh journal empty" 0 (List.length loaded);
      J.append t (ok_record ());
      J.append t (failed_record "a");
      J.append t (failed_record "b");
      J.close t;
      J.close t;
      (* idempotent *)
      let records = J.load ~path in
      Alcotest.(check (list string))
        "keys in order"
        [ (ok_record ()).J.key; "a"; "b" ]
        (List.map (fun r -> r.J.key) records))

let test_torn_tail_skipped () =
  with_temp_journal (fun path ->
      let t, _ = J.open_ ~path ~resume:false in
      J.append t (failed_record "a");
      J.append t (ok_record ());
      J.close t;
      (* Simulate a crash mid-append: half a record at the tail. *)
      let torn = J.record_to_line (failed_record "c") in
      append_raw path (String.sub torn 0 (String.length torn - 20) ^ "\n");
      let records = J.load ~path in
      Alcotest.(check (list string))
        "torn tail dropped, prefix intact"
        [ "a"; (ok_record ()).J.key ]
        (List.map (fun r -> r.J.key) records))

let test_dedup_last_wins () =
  with_temp_journal (fun path ->
      let t, _ = J.open_ ~path ~resume:false in
      J.append t (failed_record "x");
      J.append t (failed_record "y");
      (* The retried trial supersedes its earlier failure. *)
      J.append t { (ok_record ()) with J.key = "x" };
      J.close t;
      let records = J.load ~path in
      Alcotest.(check int) "two records after dedup" 2 (List.length records);
      let x = List.find (fun r -> r.J.key = "x") records in
      Alcotest.(check string) "last occurrence wins" "ok"
        (J.status_name x.J.status))

let count_lines path =
  let ic = open_in_bin path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let test_resume_compacts_segment () =
  with_temp_journal (fun path ->
      let t, _ = J.open_ ~path ~resume:false in
      J.append t (failed_record "x");
      J.append t (failed_record "x");
      (* duplicate *)
      J.append t (failed_record "y");
      J.close t;
      append_raw path "garbage that is not a record\n";
      Alcotest.(check int) "dirty segment has 4 lines" 4 (count_lines path);
      let t, loaded = J.open_ ~path ~resume:true in
      J.close t;
      Alcotest.(check (list string))
        "survivors" [ "x"; "y" ]
        (List.map (fun r -> r.J.key) loaded);
      (* The on-disk segment was rewritten: duplicates and garbage gone,
         every remaining line valid. *)
      Alcotest.(check int) "compacted to 2 lines" 2 (count_lines path);
      Alcotest.(check int) "all lines valid" 2 (List.length (J.load ~path)))

let test_open_without_resume_truncates () =
  with_temp_journal (fun path ->
      let t, _ = J.open_ ~path ~resume:false in
      J.append t (failed_record "old");
      J.close t;
      let t, loaded = J.open_ ~path ~resume:false in
      J.close t;
      Alcotest.(check int) "no records surfaced" 0 (List.length loaded);
      Alcotest.(check int) "file truncated" 0 (count_lines path))

let test_load_missing_file () =
  Alcotest.(check int) "missing file loads empty" 0
    (List.length (J.load ~path:"/nonexistent/journal.jsonl"))

(* ------------------------------------------------------------------ *)
(* Atomic_io: the primitive under every writer in the repo             *)
(* ------------------------------------------------------------------ *)

module A = Repro_core.Atomic_io

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_replace_writes () =
  with_temp_journal (fun path ->
      let n = A.replace ~path (fun oc -> output_string oc "hello\n"; 42) in
      Alcotest.(check int) "callback result returned" 42 n;
      Alcotest.(check string) "content written" "hello\n" (read_file path))

let test_atomic_replace_keeps_old_on_failure () =
  with_temp_journal (fun path ->
      ignore (A.replace ~path (fun oc -> output_string oc "old content"));
      (match
         A.replace ~path (fun oc ->
             output_string oc "half a new file";
             failwith "writer died")
       with
      | () -> Alcotest.fail "should have re-raised"
      | exception Failure _ -> ());
      (* The old file survives untouched and no temp file is left. *)
      Alcotest.(check string) "old content intact" "old content"
        (read_file path);
      let dir = Filename.dirname path and base = Filename.basename path in
      let leftovers =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f ->
               String.length f > String.length base
               && String.sub f 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "no temp residue" [] leftovers)

let () =
  Alcotest.run "journal"
    [
      ( "framing",
        [
          Alcotest.test_case "ok round trip" `Quick test_ok_round_trip;
          Alcotest.test_case "awkward floats" `Quick
            test_awkward_floats_round_trip;
          Alcotest.test_case "failure round trips" `Quick
            test_failure_round_trips;
          Alcotest.test_case "checksum detects corruption" `Quick
            test_checksum_detects_corruption;
        ] );
      ( "segments",
        [
          Alcotest.test_case "append/load cycle" `Quick test_append_load_cycle;
          Alcotest.test_case "torn tail skipped" `Quick test_torn_tail_skipped;
          Alcotest.test_case "last-wins dedup" `Quick test_dedup_last_wins;
          Alcotest.test_case "resume compacts" `Quick
            test_resume_compacts_segment;
          Alcotest.test_case "fresh open truncates" `Quick
            test_open_without_resume_truncates;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
        ] );
      ( "atomic io",
        [
          Alcotest.test_case "replace writes" `Quick test_atomic_replace_writes;
          Alcotest.test_case "failure keeps old file" `Quick
            test_atomic_replace_keeps_old_on_failure;
        ] );
    ]
