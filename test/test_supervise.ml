(* Supervised execution at the runner level: cooperative cancellation,
   per-trial deadlines, failure isolation across a cell, journaled
   outcomes and journal warm-starts. *)

module R = Repro_core.Runner
module J = Repro_core.Journal
module M = Repro_core.Machine
module C = Engine.Cancel

let fast_profile = { R.trials = 1; ycsb_trials = 1; fast = true; scale = 1 }

let exp_of policy =
  { R.workload = R.Tpch; policy; ratio = 0.5; swap = R.Ssd; trial = 0 }

(* ------------------------------------------------------------------ *)
(* Cancellation tokens                                                 *)
(* ------------------------------------------------------------------ *)

let test_cancel_token_latches () =
  let fire = ref false in
  let probes = ref 0 in
  let t = C.of_probe ~reason:"test deadline" (fun () -> incr probes; !fire) in
  Alcotest.(check bool) "not fired yet" false (C.cancelled t);
  fire := true;
  Alcotest.(check bool) "probe fires" true (C.cancelled t);
  let after_fire = !probes in
  fire := false;
  (* Latched: the probe is never consulted again and the token stays
     cancelled even though the probe would now say no. *)
  Alcotest.(check bool) "latched" true (C.cancelled t);
  Alcotest.(check int) "probe not re-consulted" after_fire !probes;
  Alcotest.(check string) "reason carried" "test deadline" (C.reason t);
  match C.check t with
  | () -> Alcotest.fail "check should raise after latch"
  | exception C.Cancelled r -> Alcotest.(check string) "payload" "test deadline" r

let test_never_token () =
  Alcotest.(check bool) "never is never cancelled" false (C.cancelled C.never);
  C.check C.never

let test_sim_run_cancels_between_events () =
  let sim = Engine.Sim.create () in
  let executed = ref 0 in
  for i = 1 to 10 do
    Engine.Sim.schedule sim ~delay:(i * 100) (fun _ -> incr executed)
  done;
  (* Fire after the third event: the in-flight event finishes, the rest
     stay queued. *)
  let t = C.of_probe ~reason:"stop at 3" (fun () -> !executed >= 3) in
  (match Engine.Sim.run ~cancel:t sim with
  | () -> Alcotest.fail "expected Cancelled"
  | exception C.Cancelled r -> Alcotest.(check string) "reason" "stop at 3" r);
  Alcotest.(check int) "three events ran" 3 !executed;
  Alcotest.(check int) "rest undrained" 7 (Engine.Sim.pending sim)

(* ------------------------------------------------------------------ *)
(* Runner failure isolation                                            *)
(* ------------------------------------------------------------------ *)

let test_try_exp_isolates_crash () =
  let ctx = R.make_ctx ~profile:fast_profile () in
  (match R.try_exp ctx (exp_of Policy.Registry.Crash_test) with
  | R.Done _ -> Alcotest.fail "crash-test cannot succeed"
  | R.Failed { reason; timed_out } ->
    Alcotest.(check bool) "not a timeout" false timed_out;
    Alcotest.(check bool) "reason mentions the policy" true
      (String.length reason > 0));
  (* The failure is cached: asking again must not re-run (and run_exp
     must surface it as an exception). *)
  Alcotest.(check int) "failure cached" 1 (R.cached_results ctx);
  (match R.run_exp ctx (exp_of Policy.Registry.Crash_test) with
  | _ -> Alcotest.fail "run_exp should raise on a failed trial"
  | exception Failure _ -> ());
  match R.failures ctx with
  | [ (e, _reason, false) ] ->
    Alcotest.(check string) "failure names the trial"
      (R.exp_key (exp_of Policy.Registry.Crash_test))
      (R.exp_key e)
  | l -> Alcotest.failf "expected one failure, got %d" (List.length l)

let test_try_cell_mixes_outcomes () =
  (* A crash-test cell fails every trial; a clock cell beside it in the
     same context still completes. *)
  let ctx =
    R.make_ctx ~profile:{ R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 } ~jobs:2 ()
  in
  let bad =
    R.try_cell ctx ~workload:R.Tpch ~policy:Policy.Registry.Crash_test
      ~ratio:0.5 ~swap:R.Ssd
  in
  let good =
    R.try_cell ctx ~workload:R.Tpch ~policy:Policy.Registry.Clock ~ratio:0.5
      ~swap:R.Ssd
  in
  Alcotest.(check int) "bad cell has all trials" 2 (List.length bad);
  List.iter
    (function
      | R.Failed _ -> ()
      | R.Done _ -> Alcotest.fail "crash-test trial succeeded")
    bad;
  Alcotest.(check int) "good cell has all trials" 2 (List.length good);
  List.iter
    (function
      | R.Done _ -> ()
      | R.Failed { reason; _ } -> Alcotest.failf "clock trial failed: %s" reason)
    good;
  Alcotest.(check int) "both crash trials in failure log" 2
    (List.length (R.failures ctx))

let test_parallel_failures_deterministic () =
  (* The failure summary must list the same trials in the same order for
     every jobs value. *)
  let run jobs =
    let ctx =
      R.make_ctx ~profile:{ R.trials = 3; ycsb_trials = 1; fast = true; scale = 1 } ~jobs ()
    in
    ignore
      (R.try_cell ctx ~workload:R.Tpch ~policy:Policy.Registry.Crash_test
         ~ratio:0.5 ~swap:R.Ssd);
    List.map (fun (e, _, _) -> R.exp_key e) (R.failures ctx)
  in
  let serial = run 1 in
  Alcotest.(check int) "three failures" 3 (List.length serial);
  Alcotest.(check (list string)) "jobs-invariant order" serial (run 4)

let test_trial_timeout () =
  (* A sub-millisecond deadline cannot fit a real trial: it must come
     back Failed with the timeout flag, not hang or raise. *)
  let ctx = R.make_ctx ~profile:fast_profile ~trial_timeout_s:1e-4 () in
  (match R.try_exp ctx (exp_of Policy.Registry.Clock) with
  | R.Done _ -> Alcotest.fail "a 0.1ms deadline cannot fit a trial"
  | R.Failed { reason; timed_out } ->
    Alcotest.(check bool) "flagged as timeout" true timed_out;
    Alcotest.(check bool) "reason mentions the deadline" true
      (String.length reason > 0));
  match R.failures ctx with
  | [ (_, _, true) ] -> ()
  | _ -> Alcotest.fail "expected exactly one timeout in the failure log"

let test_no_timeout_when_disabled () =
  let ctx = R.make_ctx ~profile:fast_profile ~trial_timeout_s:0.0 () in
  match R.try_exp ctx (exp_of Policy.Registry.Clock) with
  | R.Done _ -> ()
  | R.Failed { reason; _ } -> Alcotest.failf "unexpected failure: %s" reason

(* ------------------------------------------------------------------ *)
(* Journal integration                                                 *)
(* ------------------------------------------------------------------ *)

let with_temp_path f =
  let path = Filename.temp_file "supervise_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_outcomes_journaled () =
  with_temp_path (fun path ->
      let journal, _ = J.open_ ~path ~resume:false in
      let ctx = R.make_ctx ~profile:fast_profile ~journal () in
      let ok = R.try_exp ctx (exp_of Policy.Registry.Clock) in
      ignore (R.try_exp ctx (exp_of Policy.Registry.Crash_test));
      (* Cache hit: must not append a second record. *)
      ignore (R.try_exp ctx (exp_of Policy.Registry.Clock));
      J.close journal;
      let records = J.load ~path in
      Alcotest.(check int) "one record per computed trial" 2
        (List.length records);
      let find key = List.find (fun r -> r.J.key = key) records in
      let okr = find (R.exp_key (exp_of Policy.Registry.Clock)) in
      Alcotest.(check string) "success recorded" "ok" (J.status_name okr.J.status);
      (match (ok, okr.J.result) with
      | R.Done want, Some got ->
        Alcotest.(check int) "journaled runtime matches" want.M.runtime_ns
          got.M.runtime_ns
      | _ -> Alcotest.fail "expected Done + journaled result");
      let bad = find (R.exp_key (exp_of Policy.Registry.Crash_test)) in
      Alcotest.(check string) "failure recorded" "failed"
        (J.status_name bad.J.status);
      Alcotest.(check bool) "failure carries no result" true
        (bad.J.result = None))

let test_warm_start_resumes () =
  with_temp_path (fun path ->
      (* First run: journal one success and one failure. *)
      let journal, _ = J.open_ ~path ~resume:false in
      let ctx = R.make_ctx ~profile:fast_profile ~journal () in
      let first =
        match R.try_exp ctx (exp_of Policy.Registry.Clock) with
        | R.Done r -> r
        | R.Failed { reason; _ } -> Alcotest.failf "clock failed: %s" reason
      in
      ignore (R.try_exp ctx (exp_of Policy.Registry.Crash_test));
      J.close journal;
      (* Resume: only the success warm-starts; the failure is retried. *)
      let journal, records = J.open_ ~path ~resume:true in
      let ctx2 = R.make_ctx ~profile:fast_profile ~journal () in
      Alcotest.(check int) "one record installed" 1 (R.warm_start ctx2 records);
      Alcotest.(check int) "cache warm" 1 (R.cached_results ctx2);
      (match R.try_exp ctx2 (exp_of Policy.Registry.Clock) with
      | R.Done r ->
        Alcotest.(check int) "warm-started result identical" first.M.runtime_ns
          r.M.runtime_ns
      | R.Failed _ -> Alcotest.fail "warm-started trial reported failed");
      Alcotest.(check int) "no failures inherited" 0
        (List.length (R.failures ctx2));
      J.close journal)

let test_warm_start_skipped_under_tracing () =
  with_temp_path (fun path ->
      let journal, _ = J.open_ ~path ~resume:false in
      let ctx = R.make_ctx ~profile:fast_profile ~journal () in
      ignore (R.try_exp ctx (exp_of Policy.Registry.Clock));
      J.close journal;
      let records = J.load ~path in
      (* Journal records carry no captures, so a tracing context must
         recompute rather than serve capture-less results. *)
      let traced =
        R.make_ctx ~profile:fast_profile
          ~obs:{ Obs.trace = true; sample_every_ns = 0 }
          ()
      in
      Alcotest.(check int) "tracing skips warm start" 0
        (R.warm_start traced records);
      Alcotest.(check int) "cache stays cold" 0 (R.cached_results traced))

let () =
  Alcotest.run "supervise"
    [
      ( "cancel",
        [
          Alcotest.test_case "token latches" `Quick test_cancel_token_latches;
          Alcotest.test_case "never token" `Quick test_never_token;
          Alcotest.test_case "sim run cancels" `Quick
            test_sim_run_cancels_between_events;
        ] );
      ( "runner",
        [
          Alcotest.test_case "try_exp isolates crash" `Quick
            test_try_exp_isolates_crash;
          Alcotest.test_case "try_cell mixes outcomes" `Quick
            test_try_cell_mixes_outcomes;
          Alcotest.test_case "failures jobs-invariant" `Quick
            test_parallel_failures_deterministic;
          Alcotest.test_case "trial timeout" `Quick test_trial_timeout;
          Alcotest.test_case "timeout disabled" `Quick
            test_no_timeout_when_disabled;
        ] );
      ( "journal",
        [
          Alcotest.test_case "outcomes journaled" `Quick test_outcomes_journaled;
          Alcotest.test_case "warm start resumes" `Quick test_warm_start_resumes;
          Alcotest.test_case "warm start skipped under tracing" `Quick
            test_warm_start_skipped_under_tracing;
        ] );
    ]
