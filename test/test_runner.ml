module R = Repro_core.Runner

(* Fast, explicit profile: no environment round-trips. *)
let fast_profile = { R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }

let ctx = R.make_ctx ~profile:fast_profile ()

let test_ctx_fields () =
  let p = R.profile ctx in
  Alcotest.(check bool) "fast" true p.R.fast;
  Alcotest.(check int) "trials" 2 p.R.trials;
  Alcotest.(check int) "ycsb trials" 1 p.R.ycsb_trials;
  Alcotest.(check int) "trials_for tpch" 2 (R.trials_for ctx R.Tpch);
  Alcotest.(check int) "trials_for ycsb" 1
    (R.trials_for ctx (R.Ycsb Workload.Ycsb.A));
  Alcotest.(check int) "default jobs" 1 (R.jobs ctx);
  Alcotest.(check bool) "no faults by default" true
    (Swapdev.Faulty_device.is_none (R.fault_plan ctx));
  Alcotest.(check int) "audits end-of-run only" 0 (R.audit_every_ns ctx)

let test_make_ctx_clamps () =
  let c = R.make_ctx ~profile:fast_profile ~jobs:0 ~audit_every_ns:(-5) () in
  Alcotest.(check int) "jobs clamped to 1" 1 (R.jobs c);
  Alcotest.(check int) "audit clamped to 0" 0 (R.audit_every_ns c)

let test_profile_defaults () =
  (* Environment fallbacks untouched in the test runner, so this is the
     paper's scale unless the caller exported REPRO_* - in which case the
     parse must still produce positive values. *)
  let p = R.profile_from_env () in
  Alcotest.(check bool) "trials positive" true (p.R.trials >= 1);
  Alcotest.(check bool) "ycsb trials positive" true (p.R.ycsb_trials >= 1);
  Alcotest.(check int) "default trials" 25 R.default_profile.R.trials;
  Alcotest.(check int) "default ycsb trials" 2 R.default_profile.R.ycsb_trials;
  Alcotest.(check bool) "default full-size" false R.default_profile.R.fast

let test_names () =
  Alcotest.(check string) "tpch" "tpch" (R.workload_kind_name R.Tpch);
  Alcotest.(check string) "ycsb" "ycsb-b" (R.workload_kind_name (R.Ycsb Workload.Ycsb.B));
  Alcotest.(check string) "swap" "zram" (R.swap_name R.Zram);
  Alcotest.(check int) "five workloads" 5 (List.length R.all_workloads)

let test_exp_key_injective () =
  let exp policy =
    { R.workload = R.Tpch; policy; ratio = 0.5; swap = R.Ssd; trial = 0 }
  in
  let base = Policy.Registry.Mglru_default in
  let custom gens = Policy.Registry.Mglru_custom
      { Policy.Mglru.default_config with Policy.Mglru.max_gens = gens }
  in
  (* Display names may collide; cache keys must not. *)
  Alcotest.(check bool) "distinct customs distinct keys" true
    (R.exp_key (exp (custom 2)) <> R.exp_key (exp (custom 8)));
  Alcotest.(check bool) "custom differs from default" true
    (R.exp_key (exp base) <> R.exp_key (exp (custom 4)));
  Alcotest.(check bool) "scan-rand p encoded" true
    (R.exp_key (exp (Policy.Registry.Scan_rand 0.25))
    <> R.exp_key (exp (Policy.Registry.Scan_rand 0.5)));
  Alcotest.(check bool) "trial encoded" true
    (R.exp_key (exp base)
    <> R.exp_key { (exp base) with R.trial = 1 })

let test_workload_seeds_paired () =
  (* Same (kind, trial) must build identical workloads regardless of
     policy: check footprints and first steps match. *)
  let w1 = R.make_workload ctx R.Tpch ~trial:3 in
  let w2 = R.make_workload ctx R.Tpch ~trial:3 in
  Alcotest.(check int) "same footprint" (Workload.Chunk.packed_footprint w1)
    (Workload.Chunk.packed_footprint w2);
  let s1 = Workload.Chunk.packed_next w1 ~tid:0 in
  let s2 = Workload.Chunk.packed_next w2 ~tid:0 in
  Alcotest.(check bool) "same first step" true (s1 = s2)

let test_run_exp_cached () =
  let c = R.make_ctx ~profile:fast_profile () in
  let e = { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.5;
            swap = R.Ssd; trial = 0 } in
  Alcotest.(check int) "fresh ctx empty" 0 (R.cached_results c);
  let r1 = R.run_exp c e in
  Alcotest.(check int) "one result memoized" 1 (R.cached_results c);
  let r2 = R.run_exp c e in
  Alcotest.(check bool) "cache returns same result" true (r1 == r2);
  (* A fresh context recomputes deterministically. *)
  let c' = R.make_ctx ~profile:fast_profile () in
  let r3 = R.run_exp c' e in
  Alcotest.(check bool) "recomputed deterministically" true
    (r3.Repro_core.Machine.runtime_ns = r1.Repro_core.Machine.runtime_ns)

let test_ctx_caches_isolated () =
  (* Two contexts with different fault plans must not share results. *)
  let e = { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.5;
            swap = R.Ssd; trial = 0 } in
  let clean = R.make_ctx ~profile:fast_profile () in
  let faulty =
    R.make_ctx ~profile:fast_profile ~fault_plan:Swapdev.Faulty_device.heavy ()
  in
  let r_clean = R.run_exp clean e in
  let r_faulty = R.run_exp faulty e in
  Alcotest.(check bool) "distinct results" true (r_clean != r_faulty);
  let injected r =
    r.Repro_core.Machine.injected_transient + r.Repro_core.Machine.injected_permanent
    + r.Repro_core.Machine.injected_stalls
    + r.Repro_core.Machine.injected_tail_spikes
  in
  Alcotest.(check bool) "faults only under the faulty plan" true
    (injected r_clean = 0 && injected r_faulty > 0)

let test_run_cell () =
  let results =
    R.run_cell ctx ~workload:R.Tpch ~policy:Policy.Registry.Clock ~ratio:0.5
      ~swap:R.Ssd
  in
  Alcotest.(check int) "trials per profile" 2 (List.length results);
  let rts = R.runtimes_s results in
  Alcotest.(check bool) "runtimes positive" true (Array.for_all (fun x -> x > 0.0) rts);
  Alcotest.(check bool) "mean positive" true (R.mean_runtime_s results > 0.0);
  Alcotest.(check bool) "faults positive" true (R.mean_faults results > 0.0)

let test_prefetch_dedupes () =
  let c = R.make_ctx ~profile:fast_profile () in
  let e = { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.5;
            swap = R.Ssd; trial = 0 } in
  R.prefetch c [ e; e; e ];
  Alcotest.(check int) "one cached result" 1 (R.cached_results c)

let test_capacity_scales_with_ratio () =
  let small =
    R.run_exp ctx
      { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.5;
        swap = R.Ssd; trial = 0 }
  in
  let large =
    R.run_exp ctx
      { R.workload = R.Tpch; policy = Policy.Registry.Clock; ratio = 0.9;
        swap = R.Ssd; trial = 0 }
  in
  Alcotest.(check bool) "more memory, fewer faults" true
    (large.Repro_core.Machine.major_faults < small.Repro_core.Machine.major_faults)

let test_pooled_latencies () =
  let results =
    R.run_cell ctx ~workload:(R.Ycsb Workload.Ycsb.A)
      ~policy:Policy.Registry.Clock ~ratio:0.5 ~swap:R.Zram
  in
  let reads = R.pooled_read_latencies results in
  let writes = R.pooled_write_latencies results in
  Alcotest.(check bool) "reads recorded" true (Array.length reads > 1000);
  Alcotest.(check bool) "writes recorded" true (Array.length writes > 100);
  Alcotest.(check bool) "mean read positive" true (R.mean_read_latency_ns results > 0.0)

let () =
  Alcotest.run "runner"
    [
      ( "unit",
        [
          Alcotest.test_case "ctx fields" `Quick test_ctx_fields;
          Alcotest.test_case "make_ctx clamps" `Quick test_make_ctx_clamps;
          Alcotest.test_case "profile defaults" `Quick test_profile_defaults;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "exp_key injective" `Quick test_exp_key_injective;
          Alcotest.test_case "paired seeds" `Quick test_workload_seeds_paired;
          Alcotest.test_case "cache" `Quick test_run_exp_cached;
          Alcotest.test_case "ctx caches isolated" `Quick test_ctx_caches_isolated;
          Alcotest.test_case "run_cell" `Quick test_run_cell;
          Alcotest.test_case "prefetch dedupes" `Quick test_prefetch_dedupes;
          Alcotest.test_case "ratio scaling" `Quick test_capacity_scales_with_ratio;
          Alcotest.test_case "pooled latencies" `Quick test_pooled_latencies;
        ] );
    ]
