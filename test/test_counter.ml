module C = Engine.Counter

let test_basic () =
  let c = C.create () in
  Alcotest.(check int) "missing is zero" 0 (C.get c "nope");
  C.incr c "a";
  C.incr c "a";
  C.add c "b" 10;
  Alcotest.(check int) "a" 2 (C.get c "a");
  Alcotest.(check int) "b" 10 (C.get c "b")

let test_to_list_sorted () =
  let c = C.create () in
  C.incr c "zebra";
  C.incr c "apple";
  Alcotest.(check (list (pair string int)))
    "sorted"
    [ ("apple", 1); ("zebra", 1) ]
    (C.to_list c)

let test_reset () =
  let c = C.create () in
  C.incr c "x";
  C.reset c;
  Alcotest.(check int) "cleared" 0 (C.get c "x");
  Alcotest.(check (list (pair string int))) "empty" [] (C.to_list c)

let test_merge () =
  let a = C.create () and b = C.create () in
  C.add a "x" 1;
  C.add b "x" 2;
  C.add b "y" 3;
  C.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "x merged" 3 (C.get a "x");
  Alcotest.(check int) "y merged" 3 (C.get a "y");
  Alcotest.(check int) "src untouched" 2 (C.get b "x")

let test_merge_all () =
  (* The parallel-aggregation path: per-domain registries merged after
     the join must equal one registry that saw every increment. *)
  let parts =
    List.map
      (fun base ->
        let c = C.create () in
        C.add c "shared" base;
        C.add c (Printf.sprintf "only-%d" base) 1;
        c)
      [ 1; 2; 3 ]
  in
  let merged = C.merge_all parts in
  Alcotest.(check int) "shared summed" 6 (C.get merged "shared");
  Alcotest.(check int) "only-2 kept" 1 (C.get merged "only-2");
  List.iter (fun c -> Alcotest.(check int) "sources untouched" 1
                        (C.get c (Printf.sprintf "only-%d" (C.get c "shared"))))
    parts;
  Alcotest.(check (list (pair string int))) "empty merge" []
    (C.to_list (C.merge_all []))

let test_negative_add () =
  let c = C.create () in
  C.add c "x" (-4);
  Alcotest.(check int) "negative allowed" (-4) (C.get c "x")

let () =
  Alcotest.run "counter"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "merge_all" `Quick test_merge_all;
          Alcotest.test_case "negative add" `Quick test_negative_add;
        ] );
    ]
