module P = Stats.Percentile

let test_median_odd () =
  Alcotest.(check (float 1e-9)) "median" 3.0 (P.quantile [| 5.0; 1.0; 3.0 |] 0.5)

let test_median_even_interpolates () =
  Alcotest.(check (float 1e-9)) "median" 2.5 (P.quantile [| 1.0; 2.0; 3.0; 4.0 |] 0.5)

let test_extremes () =
  let xs = [| 7.0; 1.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "q0 = min" 1.0 (P.quantile xs 0.0);
  Alcotest.(check (float 1e-9)) "q1 = max" 9.0 (P.quantile xs 1.0)

let test_singleton () =
  Alcotest.(check (float 1e-9)) "single" 42.0 (P.quantile [| 42.0 |] 0.37)

let test_bad_inputs () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Percentile.quantile_sorted: empty sample") (fun () ->
      ignore (P.quantile [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Percentile.quantile_sorted: q outside [0,1]") (fun () ->
      ignore (P.quantile [| 1.0 |] 1.5))

let test_quartiles_iqr () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let q1, q2, q3 = P.quartiles xs in
  Alcotest.(check (float 1e-9)) "q1" 25.0 q1;
  Alcotest.(check (float 1e-9)) "median" 50.0 q2;
  Alcotest.(check (float 1e-9)) "q3" 75.0 q3;
  Alcotest.(check (float 1e-9)) "iqr" 50.0 (P.iqr xs)

let test_tail_of () =
  let xs = Array.init 10_000 (fun i -> float_of_int (i + 1)) in
  let t = P.tail_of xs in
  Alcotest.(check bool) "p50 near 5000" true (Float.abs (t.P.p50 -. 5000.0) < 2.0);
  Alcotest.(check bool) "p99 near 9900" true (Float.abs (t.P.p99 -. 9900.0) < 3.0);
  Alcotest.(check bool) "p9999 near max" true (t.P.p9999 > 9990.0);
  Alcotest.(check (float 1e-9)) "max" 10000.0 t.P.max

let test_does_not_mutate_input () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (P.quantile xs 0.5);
  Alcotest.(check (array (float 1e-9))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let prop_monotone_in_q =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0))
        (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
    (fun (xs, q1, q2) ->
      let xs = Array.of_list xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      P.quantile xs lo <= P.quantile xs hi +. 1e-9)

let test_float_compare_total_order () =
  (* Sorting uses Float.compare, a total order: negative zeros and
     extreme magnitudes land where IEEE ordering puts them, regardless
     of the polymorphic-compare representation of boxed floats. *)
  let xs = [| 0.0; -0.0; 1e308; -1e308; 5.0; -5.0 |] in
  Alcotest.(check (float 1e-9)) "q0 = most negative" (-1e308) (P.quantile xs 0.0);
  Alcotest.(check (float 1e-9)) "q1 = most positive" 1e308 (P.quantile xs 1.0)

let prop_nan_free =
  QCheck.Test.make ~name:"quantile NaN-free on NaN-free input" ~count:300
    QCheck.(
      pair (list_of_size Gen.(1 -- 40) (float_range (-1e12) 1e12))
        (float_bound_inclusive 1.0))
    (fun (xs, q) -> not (Float.is_nan (P.quantile (Array.of_list xs) q)))

let prop_within_range =
  QCheck.Test.make ~name:"quantile within [min, max]" ~count:300
    QCheck.(
      pair (list_of_size Gen.(1 -- 40) (float_range (-50.0) 50.0))
        (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let xs = Array.of_list xs in
      let v = P.quantile xs q in
      let mn = Array.fold_left min xs.(0) xs in
      let mx = Array.fold_left max xs.(0) xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

let () =
  Alcotest.run "percentile"
    [
      ( "unit",
        [
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even_interpolates;
          Alcotest.test_case "extremes" `Quick test_extremes;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
          Alcotest.test_case "quartiles/iqr" `Quick test_quartiles_iqr;
          Alcotest.test_case "tail_of" `Quick test_tail_of;
          Alcotest.test_case "no mutation" `Quick test_does_not_mutate_input;
          Alcotest.test_case "total order" `Quick test_float_compare_total_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_monotone_in_q; prop_nan_free; prop_within_range ] );
    ]
