(* End-to-end: full workloads through the machine at the fast profile,
   checking the cross-module behaviours the figures rely on. *)

module R = Repro_core.Runner
module M = Repro_core.Machine

let ctx =
  R.make_ctx ~profile:{ R.trials = 1; ycsb_trials = 1; fast = true; scale = 1 } ()

let run workload policy ~ratio ~swap =
  R.run_exp ctx { R.workload; policy; ratio; swap; trial = 0 }

let test_all_workload_policy_pairs_complete () =
  List.iter
    (fun workload ->
      List.iter
        (fun policy ->
          let r = run workload policy ~ratio:0.5 ~swap:R.Ssd in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s runs" (R.workload_kind_name workload)
               (Policy.Registry.name policy))
            true
            (r.M.runtime_ns > 0 && r.M.major_faults > 0))
        Policy.Registry.[ Clock; Mglru_default ])
    R.all_workloads

let test_variants_complete_on_tpch () =
  List.iter
    (fun policy ->
      let r = run R.Tpch policy ~ratio:0.5 ~swap:R.Ssd in
      Alcotest.(check bool)
        (Policy.Registry.name policy ^ " completes")
        true (r.M.runtime_ns > 0))
    Policy.Registry.[ Gen14; Scan_all; Scan_none; Scan_rand 0.5; Fifo; Lru_exact ]

let test_memory_pressure_gradient () =
  (* More memory -> fewer faults and shorter runtime, for both policies. *)
  List.iter
    (fun policy ->
      let at ratio = run R.Tpch policy ~ratio ~swap:R.Ssd in
      let r50 = at 0.5 and r75 = at 0.75 and r90 = at 0.9 in
      Alcotest.(check bool) "faults decrease" true
        (r90.M.major_faults < r75.M.major_faults
        && r75.M.major_faults < r50.M.major_faults);
      Alcotest.(check bool) "runtime decreases" true
        (r90.M.runtime_ns < r50.M.runtime_ns))
    Policy.Registry.[ Clock; Mglru_default ]

let test_zram_shifts_bottleneck () =
  let ssd = run R.Pagerank Policy.Registry.Mglru_default ~ratio:0.5 ~swap:R.Ssd in
  let zram = run R.Pagerank Policy.Registry.Mglru_default ~ratio:0.5 ~swap:R.Zram in
  Alcotest.(check bool) "zram much faster" true
    (float_of_int zram.M.runtime_ns < 0.6 *. float_of_int ssd.M.runtime_ns);
  Alcotest.(check bool) "zram does not fault less" true
    (zram.M.major_faults >= (ssd.M.major_faults * 9 / 10))

let test_ycsb_latency_capture () =
  let r = run (R.Ycsb Workload.Ycsb.A) Policy.Registry.Clock ~ratio:0.5 ~swap:R.Ssd in
  let reads = Array.length r.M.read_latencies in
  let writes = Array.length r.M.write_latencies in
  let total = reads + writes in
  Alcotest.(check bool) "every request recorded" true (total >= 200_000);
  let frac = float_of_int writes /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "write fraction %.3f near 0.5" frac)
    true
    (Float.abs (frac -. 0.5) < 0.02);
  (* Tails are far above the median under SSD thrash. *)
  let t = Stats.Percentile.tail_of r.M.read_latencies in
  Alcotest.(check bool) "p99.99 >> p50" true
    (t.Stats.Percentile.p9999 > 4.0 *. t.Stats.Percentile.p50)

let test_conservation_after_run () =
  let r = run R.Tpch Policy.Registry.Mglru_default ~ratio:0.5 ~swap:R.Ssd in
  let w = R.make_workload ctx R.Tpch ~trial:0 in
  let footprint = Workload.Chunk.packed_footprint w in
  let capacity = int_of_float (float_of_int footprint *. 0.5) in
  Alcotest.(check bool)
    (Printf.sprintf "resident %d <= capacity %d" r.M.resident_at_end capacity)
    true
    (r.M.resident_at_end <= capacity)

let test_identical_workload_across_policies () =
  (* The paired-seed contract: minor faults (= distinct pages touched)
     must agree between policies on the same trial. *)
  let a = run R.Tpch Policy.Registry.Clock ~ratio:0.5 ~swap:R.Ssd in
  let b = run R.Tpch Policy.Registry.Scan_none ~ratio:0.5 ~swap:R.Ssd in
  Alcotest.(check int) "same first-touch footprint" a.M.minor_faults b.M.minor_faults

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "all pairs complete" `Slow test_all_workload_policy_pairs_complete;
          Alcotest.test_case "variants complete" `Slow test_variants_complete_on_tpch;
          Alcotest.test_case "pressure gradient" `Slow test_memory_pressure_gradient;
          Alcotest.test_case "zram bottleneck" `Slow test_zram_shifts_bottleneck;
          Alcotest.test_case "ycsb latency capture" `Slow test_ycsb_latency_capture;
          Alcotest.test_case "conservation" `Quick test_conservation_after_run;
          Alcotest.test_case "paired workloads" `Quick test_identical_workload_across_policies;
        ] );
    ]
