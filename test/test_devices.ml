module D = Swapdev.Device

let submit_read dev ~now = dev.D.submit ~now ~op:D.Read ~size_fraction:0.5

let test_ssd_service_time () =
  let dev = Swapdev.Ssd.create ~rng:(Engine.Rng.create 1) () in
  let c = submit_read dev ~now:0 in
  let base = Swapdev.Ssd.default_config.Swapdev.Ssd.read_ns in
  Alcotest.(check bool) "service near 7.5ms" true
    (c.D.finish_ns > base * 9 / 10 && c.D.finish_ns < base * 11 / 10);
  Alcotest.(check int) "reads counted" 1 (dev.D.reads ())

let test_ssd_queueing () =
  let config = { Swapdev.Ssd.default_config with Swapdev.Ssd.channels = 1; jitter = 0.0 } in
  let dev = Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) () in
  let c1 = submit_read dev ~now:0 in
  let c2 = submit_read dev ~now:0 in
  Alcotest.(check int) "second queues behind first"
    (2 * config.Swapdev.Ssd.read_ns) c2.D.finish_ns;
  Alcotest.(check int) "first on time" config.Swapdev.Ssd.read_ns c1.D.finish_ns

let test_ssd_parallel_channels () =
  let config = { Swapdev.Ssd.default_config with Swapdev.Ssd.channels = 4; jitter = 0.0 } in
  let dev = Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) () in
  let finishes = List.init 4 (fun _ -> (submit_read dev ~now:0).D.finish_ns) in
  List.iter
    (fun f -> Alcotest.(check int) "all run in parallel" config.Swapdev.Ssd.read_ns f)
    finishes

let test_ssd_idle_gap () =
  let config = { Swapdev.Ssd.default_config with Swapdev.Ssd.channels = 1; jitter = 0.0 } in
  let dev = Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) () in
  ignore (submit_read dev ~now:0);
  let c = submit_read dev ~now:100_000_000 in
  Alcotest.(check int) "no queueing after idle"
    (100_000_000 + config.Swapdev.Ssd.read_ns) c.D.finish_ns

let test_zram_much_faster () =
  let ssd = Swapdev.Ssd.create ~rng:(Engine.Rng.create 1) () in
  let zram = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  let cs = submit_read ssd ~now:0 in
  let cz = submit_read zram ~now:0 in
  Alcotest.(check bool) "two orders of magnitude" true
    (cz.D.finish_ns * 100 < cs.D.finish_ns)

let test_zram_write_slower_than_read () =
  let config = { Swapdev.Zram.default_config with Swapdev.Zram.jitter = 0.0 } in
  let dev = Swapdev.Zram.create ~config ~rng:(Engine.Rng.create 1) () in
  let r = dev.D.submit ~now:0 ~op:D.Read ~size_fraction:0.5 in
  let w = dev.D.submit ~now:0 ~op:D.Write ~size_fraction:0.5 in
  Alcotest.(check bool) "write > read" true (w.D.finish_ns - 0 > r.D.finish_ns - 0)

let test_zram_cpu_coupled () =
  let dev = Swapdev.Zram.create ~rng:(Engine.Rng.create 1) () in
  let c = dev.D.submit ~now:0 ~op:D.Read ~size_fraction:0.5 in
  Alcotest.(check int) "compression runs on the CPU" c.D.finish_ns c.D.cpu_ns;
  let ssd = Swapdev.Ssd.create ~rng:(Engine.Rng.create 1) () in
  let cs = ssd.D.submit ~now:0 ~op:D.Read ~size_fraction:0.5 in
  Alcotest.(check bool) "ssd cpu tiny" true (cs.D.cpu_ns * 100 < cs.D.finish_ns)

let test_zram_size_sensitivity () =
  let config = { Swapdev.Zram.default_config with Swapdev.Zram.jitter = 0.0 } in
  let dev = Swapdev.Zram.create ~config ~rng:(Engine.Rng.create 1) () in
  let small = dev.D.submit ~now:0 ~op:D.Read ~size_fraction:0.1 in
  let dev2 = Swapdev.Zram.create ~config ~rng:(Engine.Rng.create 1) () in
  let big = dev2.D.submit ~now:0 ~op:D.Read ~size_fraction:1.0 in
  Alcotest.(check bool) "compressible pages faster" true
    (small.D.finish_ns < big.D.finish_ns)

let test_ssd_size_insensitive_by_default () =
  (* Swap moves whole pages: with the default config, service time must
     not depend on the stored fraction. *)
  let config = { Swapdev.Ssd.default_config with Swapdev.Ssd.jitter = 0.0 } in
  let small = (Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) ()).D.submit
                ~now:0 ~op:D.Read ~size_fraction:0.1 in
  let big = (Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) ()).D.submit
              ~now:0 ~op:D.Read ~size_fraction:1.0 in
  Alcotest.(check int) "same service time" big.D.finish_ns small.D.finish_ns;
  Alcotest.(check int) "base service time" config.Swapdev.Ssd.read_ns big.D.finish_ns

let test_ssd_size_sensitivity_opt_in () =
  let config =
    { Swapdev.Ssd.default_config with Swapdev.Ssd.jitter = 0.0; size_sensitivity = 0.5 }
  in
  let at f =
    ((Swapdev.Ssd.create ~config ~rng:(Engine.Rng.create 1) ()).D.submit
       ~now:0 ~op:D.Read ~size_fraction:f).D.finish_ns
  in
  (* a full-page transfer still costs exactly the base time... *)
  Alcotest.(check int) "full page unchanged" config.Swapdev.Ssd.read_ns (at 1.0);
  (* ...while compressible pages get proportionally cheaper *)
  Alcotest.(check bool) "half page cheaper" true (at 0.5 < at 1.0);
  Alcotest.(check int) "interpolated cost"
    (int_of_float (float_of_int config.Swapdev.Ssd.read_ns *. 0.75))
    (at 0.5)

(* Property: under any op sequence, a device's busy horizon never moves
   backwards and completions never finish before submission. *)
let prop_time_sanity name make_dev =
  let rng = Engine.Rng.create 77 in
  let dev = make_dev () in
  let now = ref 0 in
  let last_busy = ref (dev.D.busy_until ()) in
  for i = 0 to 499 do
    now := !now + Engine.Rng.int rng 3_000_000;
    let op = if Engine.Rng.bool rng 0.5 then D.Read else D.Write in
    let size_fraction = 0.05 +. (0.95 *. Engine.Rng.float rng 1.0) in
    let c = dev.D.submit ~now:!now ~op ~size_fraction in
    if c.D.finish_ns < !now then
      Alcotest.failf "%s op %d: finish %d before submit %d" name i c.D.finish_ns !now;
    let busy = dev.D.busy_until () in
    if busy < !last_busy then
      Alcotest.failf "%s op %d: busy_until went backwards (%d < %d)" name i busy
        !last_busy;
    last_busy := busy
  done

let test_ssd_time_sanity () =
  prop_time_sanity "ssd" (fun () -> Swapdev.Ssd.create ~rng:(Engine.Rng.create 5) ())

let test_zram_time_sanity () =
  prop_time_sanity "zram" (fun () -> Swapdev.Zram.create ~rng:(Engine.Rng.create 5) ())

let test_stored_bytes_estimate () =
  Alcotest.(check int) "estimate" (4096 * 25)
    (Swapdev.Zram.stored_bytes_estimate ~pages:100 ~mean_ratio:0.25)

let () =
  Alcotest.run "devices"
    [
      ( "ssd",
        [
          Alcotest.test_case "service time" `Quick test_ssd_service_time;
          Alcotest.test_case "queueing" `Quick test_ssd_queueing;
          Alcotest.test_case "parallel channels" `Quick test_ssd_parallel_channels;
          Alcotest.test_case "idle gap" `Quick test_ssd_idle_gap;
          Alcotest.test_case "size-insensitive default" `Quick
            test_ssd_size_insensitive_by_default;
          Alcotest.test_case "size sensitivity opt-in" `Quick
            test_ssd_size_sensitivity_opt_in;
        ] );
      ( "properties",
        [
          Alcotest.test_case "ssd time sanity" `Quick test_ssd_time_sanity;
          Alcotest.test_case "zram time sanity" `Quick test_zram_time_sanity;
        ] );
      ( "zram",
        [
          Alcotest.test_case "much faster than ssd" `Quick test_zram_much_faster;
          Alcotest.test_case "write slower than read" `Quick test_zram_write_slower_than_read;
          Alcotest.test_case "cpu coupled" `Quick test_zram_cpu_coupled;
          Alcotest.test_case "size sensitivity" `Quick test_zram_size_sensitivity;
          Alcotest.test_case "stored bytes" `Quick test_stored_bytes_estimate;
        ] );
    ]
