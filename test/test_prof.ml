module P = Obs.Prof
module R = Repro_core.Runner
module M = Repro_core.Machine

(* ------------------------------------------------------------------ *)
(* Taxonomy and path codes                                             *)
(* ------------------------------------------------------------------ *)

let test_taxonomy () =
  Alcotest.(check int) "fourteen phases" 14 P.n_phases;
  Alcotest.(check int) "array agrees" P.n_phases (Array.length P.all_phases);
  Array.iteri
    (fun i p ->
      Alcotest.(check int) "index round-trip" i (P.phase_index p);
      Alcotest.(check bool) "of_index round-trip" true (P.phase_of_index i = p))
    P.all_phases;
  Alcotest.(check (list string)) "stable names"
    [
      "app_compute"; "fault_handling"; "rmap_walk"; "pte_scan"; "aging_walk";
      "evict_scan"; "writeback_wait"; "swap_wait"; "barrier_wait"; "oom_kill";
      "hook_on_fault"; "hook_on_access_sample"; "hook_on_scan_tick";
      "hook_evict_request";
    ]
    (List.map P.phase_name (Array.to_list P.all_phases));
  Alcotest.(check (list bool)) "wait phases"
    [ false; false; false; false; false; true; true; true; false ]
    (List.map P.wait_phase
       [
         P.App_compute; P.Fault_handling; P.Rmap_walk; P.Pte_scan;
         P.Evict_scan; P.Writeback_wait; P.Swap_wait; P.Barrier_wait;
         P.Oom_kill;
       ]);
  Alcotest.(check (list bool)) "guest phases"
    [ true; true; true; true; false; false ]
    (List.map P.guest_phase
       [
         P.Hook_fault; P.Hook_access; P.Hook_tick; P.Hook_evict;
         P.App_compute; P.Evict_scan;
       ]);
  List.iter
    (fun p ->
      Alcotest.(check bool) "hook phases are CPU, not waits" false
        (P.wait_phase p))
    [ P.Hook_fault; P.Hook_access; P.Hook_tick; P.Hook_evict ];
  match P.phase_of_index P.n_phases with
  | _ -> Alcotest.fail "of_index out of range should raise"
  | exception Invalid_argument _ -> ()

let test_path_codes () =
  let stacks =
    [
      [ P.App_compute ];
      [ P.Fault_handling; P.Evict_scan ];
      [ P.App_compute; P.Fault_handling; P.Evict_scan; P.Rmap_walk ];
      [ P.Evict_scan; P.Pte_scan ];
      [ P.Oom_kill ];
    ]
  in
  List.iter
    (fun stack ->
      Alcotest.(check bool) "round-trip" true
        (P.path_phases (P.path_code stack) = stack))
    stacks;
  (* Distinct stacks encode distinctly. *)
  let codes = List.map P.path_code stacks in
  Alcotest.(check int) "injective" (List.length codes)
    (List.length (List.sort_uniq compare codes))

(* ------------------------------------------------------------------ *)
(* Sink attribution semantics                                          *)
(* ------------------------------------------------------------------ *)

let totals_only = { P.enabled = true; spans = false }

let total cap ~cls ~code =
  Array.fold_left
    (fun acc (c, p, ns) -> if c = cls && p = code then acc + ns else acc)
    0 cap.P.totals

let sum_totals cap = Array.fold_left (fun acc (_, _, ns) -> acc + ns) 0 cap.P.totals

let app_sink () =
  let t = P.create totals_only in
  P.register_thread t ~tid:0 ~name:"app0" ~klass:P.App ~default:P.App_compute;
  P.enter_thread t ~tid:0;
  t

let test_disabled_noops () =
  let t = P.disabled in
  Alcotest.(check bool) "disabled" false (P.enabled t);
  P.register_thread t ~tid:0 ~name:"app0" ~klass:P.App ~default:P.App_compute;
  P.enter_thread t ~tid:0;
  P.begin_phase t ~now:0 P.Fault_handling;
  P.charge t ~phase:P.Pte_scan 100;
  P.on_cpu_charge t (-1) 50;
  P.wait t ~tid:0 ~now:10 P.Swap_wait 10;
  P.end_phase t ~now:1;
  Alcotest.(check bool) "no capture" true (P.capture t = None);
  Alcotest.(check bool) "create off = disabled" true
    (P.capture (P.create P.off) = None)

let test_untagged_lands_in_enclosing_span () =
  let t = app_sink () in
  P.on_cpu_charge t (-1) 40;
  P.begin_phase t ~now:0 P.Fault_handling;
  P.on_cpu_charge t (-1) 7;
  P.end_phase t ~now:1;
  let cap = Option.get (P.capture t) in
  Alcotest.(check int) "default phase" 40
    (total cap ~cls:0 ~code:(P.path_code [ P.App_compute ]));
  Alcotest.(check int) "enclosing span" 7
    (total cap ~cls:0 ~code:(P.path_code [ P.App_compute; P.Fault_handling ]));
  Alcotest.(check int) "nothing else" 47 (sum_totals cap)

let test_tagged_charge_consumed_by_untagged_flush () =
  (* The policy attributes 100 ns at accrual; the machine later pushes
     150 ns through an untagged Cpu.charge.  The 100 attributed ns must
     not double-count: only the 50 ns remainder lands on the path. *)
  let t = app_sink () in
  P.begin_phase t ~now:0 P.Fault_handling;
  P.charge t ~phase:P.Pte_scan 100;
  P.on_cpu_charge t (-1) 150;
  P.end_phase t ~now:1;
  let cap = Option.get (P.capture t) in
  Alcotest.(check int) "tagged under span" 100
    (total cap ~cls:0
       ~code:(P.path_code [ P.App_compute; P.Fault_handling; P.Pte_scan ]));
  Alcotest.(check int) "only the remainder" 50
    (total cap ~cls:0 ~code:(P.path_code [ P.App_compute; P.Fault_handling ]));
  Alcotest.(check int) "each ns once" 150 (sum_totals cap)

let test_explicitly_tagged_cpu_charge_skips_pending () =
  let t = app_sink () in
  P.charge t ~phase:P.Rmap_walk 30;
  (* A tagged Cpu.charge is work charged nowhere else: full amount. *)
  P.on_cpu_charge t (P.phase_index P.Fault_handling) 25;
  (* Pending is still 30, consumed by this untagged flush. *)
  P.on_cpu_charge t (-1) 30;
  let cap = Option.get (P.capture t) in
  Alcotest.(check int) "rmap attributed" 30
    (total cap ~cls:0 ~code:(P.path_code [ P.App_compute; P.Rmap_walk ]));
  Alcotest.(check int) "tagged charge attributed in full" 25
    (total cap ~cls:0 ~code:(P.path_code [ P.App_compute; P.Fault_handling ]));
  (* 55 ns of CPU was charged (25 tagged + 30 untagged); the Prof.charge
     attribution names where the untagged 30 belongs, it adds nothing. *)
  Alcotest.(check int) "each ns once" 55 (sum_totals cap)

let test_suspend_resume_pending () =
  (* A fault handler accrues 100 ns of attribution, then a nested
     direct-reclaim episode runs with its own accrual and aggregate
     flush; the episode must not consume the handler's pending. *)
  let t = app_sink () in
  P.begin_phase t ~now:0 P.Fault_handling;
  P.charge t ~phase:P.Fault_handling 100;
  let saved = P.suspend_pending t in
  P.begin_phase t ~now:0 P.Evict_scan;
  P.charge t ~phase:P.Rmap_walk 30;
  P.on_cpu_charge t (-1) 40 (* episode flush: 30 covered, 10 remain *);
  P.end_phase t ~now:1;
  P.resume_pending t saved;
  P.on_cpu_charge t (-1) 100 (* segment flush: all covered *);
  P.end_phase t ~now:2;
  let cap = Option.get (P.capture t) in
  let fh = [ P.App_compute; P.Fault_handling ] in
  Alcotest.(check int) "handler attribution" 100
    (total cap ~cls:0 ~code:(P.path_code fh));
  Alcotest.(check int) "episode rmap" 30
    (total cap ~cls:0 ~code:(P.path_code (fh @ [ P.Evict_scan; P.Rmap_walk ])));
  Alcotest.(check int) "episode remainder" 10
    (total cap ~cls:0 ~code:(P.path_code (fh @ [ P.Evict_scan ])));
  Alcotest.(check int) "each ns once" 140 (sum_totals cap)

let test_enter_thread_resets_pending () =
  let t = P.create totals_only in
  P.register_thread t ~tid:0 ~name:"app0" ~klass:P.App ~default:P.App_compute;
  P.register_thread t ~tid:1 ~name:"app1" ~klass:P.App ~default:P.App_compute;
  P.enter_thread t ~tid:0;
  P.charge t ~phase:P.Rmap_walk 50;
  (* The flush never arrives: the scheduler switches threads. *)
  P.enter_thread t ~tid:1;
  P.on_cpu_charge t (-1) 80;
  let cap = Option.get (P.capture t) in
  Alcotest.(check int) "successor keeps its own charges" 80
    (total cap ~cls:0 ~code:(P.path_code [ P.App_compute ]));
  Alcotest.(check int) "stale pending dropped" 130 (sum_totals cap)

let test_waits_flat_and_pending_free () =
  let t = app_sink () in
  P.charge t ~phase:P.Pte_scan 60;
  P.wait t ~tid:0 ~now:1000 P.Swap_wait 500;
  P.on_cpu_charge t (-1) 60;
  let cap = Option.get (P.capture t) in
  Alcotest.(check int) "wait is flat" 500
    (total cap ~cls:0 ~code:(P.path_code [ P.Swap_wait ]));
  Alcotest.(check int) "pending untouched by the wait" 60
    (total cap ~cls:0 ~code:(P.path_code [ P.App_compute; P.Pte_scan ]))

let test_spans_recorded_only_when_on () =
  let quiet = app_sink () in
  P.begin_phase quiet ~now:10 P.Fault_handling;
  P.end_phase quiet ~now:30;
  Alcotest.(check int) "totals-only: no spans" 0
    (Array.length (Option.get (P.capture quiet)).P.spans);
  let t = P.create { P.enabled = true; spans = true } in
  P.register_thread t ~tid:0 ~name:"app0" ~klass:P.App ~default:P.App_compute;
  P.enter_thread t ~tid:0;
  P.begin_phase t ~now:10 P.Fault_handling;
  P.end_phase t ~now:30;
  P.wait t ~tid:0 ~now:100 P.Swap_wait 40;
  P.mark t ~tid:0 ~now:150 P.Oom_kill;
  let cap = Option.get (P.capture t) in
  Alcotest.(check bool) "three spans" true
    (cap.P.spans
    = [|
        (0, P.phase_index P.Fault_handling, 10, 30);
        (0, P.phase_index P.Swap_wait, 60, 100);
        (0, P.phase_index P.Oom_kill, 150, 150);
      |])

(* ------------------------------------------------------------------ *)
(* Encode / decode / merge                                             *)
(* ------------------------------------------------------------------ *)

let test_encode_decode_round_trip () =
  let t = P.create { P.enabled = true; spans = true } in
  P.register_thread t ~tid:0 ~name:"app0" ~klass:P.App ~default:P.App_compute;
  P.register_thread t ~tid:1 ~name:"kswapd" ~klass:P.Kthread
    ~default:P.Evict_scan;
  P.enter_thread t ~tid:0;
  P.begin_phase t ~now:0 P.Fault_handling;
  P.on_cpu_charge t (-1) 123;
  P.end_phase t ~now:5;
  P.enter_thread t ~tid:1;
  P.charge t ~phase:P.Rmap_walk 7;
  P.on_cpu_charge t (-1) 7;
  P.wait t ~tid:0 ~now:50 P.Barrier_wait 9;
  let cap = Option.get (P.capture t) in
  let cap' = P.decode_capture (P.encode_capture cap) in
  Alcotest.(check bool) "classes survive" true (cap'.P.classes = cap.P.classes);
  Alcotest.(check bool) "threads survive" true (cap'.P.threads = cap.P.threads);
  Alcotest.(check bool) "totals survive" true (cap'.P.totals = cap.P.totals);
  Alcotest.(check int) "spans dropped" 0 (Array.length cap'.P.spans)

let test_decode_rejects_malformed () =
  List.iter
    (fun s ->
      match P.decode_capture s with
      | _ -> Alcotest.failf "accepted malformed %S" s
      | exception Failure _ -> ())
    [
      ""; "garbage"; "app"; "app|0:app0:0"; "app|0:app0:0|0:1g:5";
      "app|0:app0:0|0:12:x"; "app|zero:app0:0|"; "app|0:app0:9|";
      "app|0:app0:0|1:12:5";
    ]

let test_merge_sums_and_unifies_classes () =
  let mk names_charges =
    let t = P.create totals_only in
    List.iteri
      (fun tid (name, klass, default, ns) ->
        P.register_thread t ~tid ~name ~klass ~default;
        P.enter_thread t ~tid;
        P.on_cpu_charge t (-1) ns)
      names_charges;
    Option.get (P.capture t)
  in
  let a =
    mk
      [
        ("app0", P.App, P.App_compute, 10);
        ("kswapd", P.Kthread, P.Evict_scan, 20);
      ]
  in
  let b =
    mk
      [
        ("app0", P.App, P.App_compute, 1);
        ("lru_gen_aging", P.Kthread, P.Aging_walk, 2);
      ]
  in
  let m = P.merge [ a; b ] in
  Alcotest.(check (list string)) "first-appearance class order"
    [ "app"; "kswapd"; "lru_gen_aging" ]
    (Array.to_list m.P.m_classes);
  let find code cls =
    Array.fold_left
      (fun acc (c, p, ns) -> if c = cls && p = code then acc + ns else acc)
      0 m.P.m_totals
  in
  Alcotest.(check int) "app summed" 11 (find (P.path_code [ P.App_compute ]) 0);
  Alcotest.(check int) "kswapd kept" 20 (find (P.path_code [ P.Evict_scan ]) 1);
  Alcotest.(check int) "aging kept" 2 (find (P.path_code [ P.Aging_walk ]) 2);
  (* Merging the same list again is byte-identical. *)
  Alcotest.(check bool) "deterministic" true (P.merge [ a; b ] = m)

(* ------------------------------------------------------------------ *)
(* Machine-level behaviour                                             *)
(* ------------------------------------------------------------------ *)

let fast_profile = { R.trials = 1; ycsb_trials = 1; fast = true; scale = 1 }

let exp_for policy =
  { R.workload = R.Tpch; policy; ratio = 0.5; swap = R.Ssd; trial = 0 }

let profiled_result policy =
  let ctx = R.make_ctx ~profile:fast_profile ~prof:totals_only () in
  R.run_exp ctx (exp_for policy)

let test_profiling_does_not_perturb () =
  let plain =
    R.run_exp (R.make_ctx ~profile:fast_profile ()) (exp_for Policy.Registry.Clock)
  in
  let profiled = profiled_result Policy.Registry.Clock in
  Alcotest.(check bool) "plain has no profile" true (plain.M.profile = None);
  Alcotest.(check bool) "profiled has one" true (profiled.M.profile <> None);
  Alcotest.(check int) "runtime identical" plain.M.runtime_ns
    profiled.M.runtime_ns;
  Alcotest.(check int) "major faults identical" plain.M.major_faults
    profiled.M.major_faults;
  Alcotest.(check int) "cpu busy identical" plain.M.cpu_busy_ns
    profiled.M.cpu_busy_ns;
  Alcotest.(check bool) "all other counters identical" true
    ({ plain with M.profile = None } = { profiled with M.profile = None })

let cpu_and_rmap (cap : P.capture) =
  Array.fold_left
    (fun (cpu, rmap) (_, code, ns) ->
      match List.rev (P.path_phases code) with
      | leaf :: _ when not (P.wait_phase leaf) ->
        (cpu + ns, if leaf = P.Rmap_walk then rmap + ns else rmap)
      | _ -> (cpu, rmap))
    (0, 0) cap.P.totals

let test_every_ns_attributed_once () =
  (* The strongest profiler invariant: summing the non-wait leaf totals
     recovers the machine's CPU busy-time counter exactly. *)
  List.iter
    (fun policy ->
      let r = profiled_result policy in
      let cpu, _ = cpu_and_rmap (Option.get r.M.profile) in
      Alcotest.(check int)
        (Policy.Registry.name policy ^ " attribution complete")
        r.M.cpu_busy_ns cpu)
    [ Policy.Registry.Clock; Policy.Registry.Mglru_default ]

let test_clock_rmap_share_exceeds_mglru () =
  (* The paper's causal story (§V): CLOCK pays an rmap walk per scanned
     page while MG-LRU walks page tables instead, so under identical
     TPC-H pressure CLOCK's rmap share of CPU must dominate, and
     MG-LRU's PTE-scan/aging machinery must actually register. *)
  let share policy =
    let r = profiled_result policy in
    let cap = Option.get r.M.profile in
    let cpu, rmap = cpu_and_rmap cap in
    (float_of_int rmap /. float_of_int cpu, cap)
  in
  let clock_share, _ = share Policy.Registry.Clock in
  let mglru_share, mglru_cap = share Policy.Registry.Mglru_default in
  Alcotest.(check bool) "clock rmap share strictly larger" true
    (clock_share > mglru_share);
  let leaf_ns phase =
    Array.fold_left
      (fun acc (_, code, ns) ->
        match List.rev (P.path_phases code) with
        | leaf :: _ when leaf = phase -> acc + ns
        | _ -> acc)
      0 mglru_cap.P.totals
  in
  Alcotest.(check bool) "mglru shifts work to pte scans" true
    (leaf_ns P.Pte_scan > 0);
  Alcotest.(check bool) "mglru aging walks charged" true
    (leaf_ns P.Aging_walk > 0)

let test_thread_registry_and_kthread_classes () =
  let r = profiled_result Policy.Registry.Mglru_default in
  let cap = Option.get r.M.profile in
  Alcotest.(check (list string)) "classes"
    [ "app"; "kswapd"; "lru_gen_aging" ]
    (Array.to_list cap.P.classes);
  (* Threads are sorted by tid: the app threads first, then kthreads. *)
  Array.iteri
    (fun i (tid, _, _) -> Alcotest.(check int) "tid order" i tid)
    cap.P.threads;
  let by_class c =
    Array.to_list cap.P.threads
    |> List.filter_map (fun (_, name, cls) -> if cls = c then Some name else None)
  in
  Alcotest.(check bool) "several app threads" true (List.length (by_class 0) > 1);
  Alcotest.(check (list string)) "kswapd class" [ "kswapd" ] (by_class 1);
  Alcotest.(check (list string)) "aging class" [ "lru_gen_aging" ] (by_class 2)

let test_journal_round_trips_profile () =
  let r = profiled_result Policy.Registry.Clock in
  let record =
    { Repro_core.Journal.key = "k"; status = Repro_core.Journal.Trial_ok;
      reason = ""; result = Some { r with M.trace = None } }
  in
  match Repro_core.Journal.record_of_line (Repro_core.Journal.record_to_line record) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok got -> (
    match got.Repro_core.Journal.result with
    | Some res ->
      Alcotest.(check bool) "profile survives the journal" true
        (res.M.profile = r.M.profile)
    | None -> Alcotest.fail "lost the result")

let test_merge_matches_parallel_merge () =
  (* profile_cells merges in trial order from the deterministic log, so
     two contexts at different --jobs agree byte-for-byte. *)
  let cells jobs =
    let ctx = R.make_ctx ~profile:{ R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }
        ~jobs ~prof:totals_only ()
    in
    R.prefetch ctx
      (List.concat_map
         (fun policy ->
           R.cell_exps ctx ~workload:R.Tpch ~policy ~ratio:0.5 ~swap:R.Ssd)
         [ Policy.Registry.Clock; Policy.Registry.Mglru_default ]);
    List.map (fun (e, m) -> (R.exp_key e, m)) (R.profile_cells ctx)
  in
  let serial = cells 1 and parallel = cells 4 in
  Alcotest.(check int) "two cells" 2 (List.length serial);
  Alcotest.(check bool) "identical across jobs" true (serial = parallel)

let () =
  Alcotest.run "prof"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "phases" `Quick test_taxonomy;
          Alcotest.test_case "path codes" `Quick test_path_codes;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_disabled_noops;
          Alcotest.test_case "untagged in enclosing span" `Quick
            test_untagged_lands_in_enclosing_span;
          Alcotest.test_case "pending consumed once" `Quick
            test_tagged_charge_consumed_by_untagged_flush;
          Alcotest.test_case "tagged cpu charge" `Quick
            test_explicitly_tagged_cpu_charge_skips_pending;
          Alcotest.test_case "suspend/resume pending" `Quick
            test_suspend_resume_pending;
          Alcotest.test_case "enter_thread resets pending" `Quick
            test_enter_thread_resets_pending;
          Alcotest.test_case "waits" `Quick test_waits_flat_and_pending_free;
          Alcotest.test_case "spans" `Quick test_spans_recorded_only_when_on;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "encode/decode" `Quick test_encode_decode_round_trip;
          Alcotest.test_case "rejects malformed" `Quick
            test_decode_rejects_malformed;
          Alcotest.test_case "merge" `Quick test_merge_sums_and_unifies_classes;
        ] );
      ( "machine",
        [
          Alcotest.test_case "no perturbation" `Quick
            test_profiling_does_not_perturb;
          Alcotest.test_case "every ns once" `Quick test_every_ns_attributed_once;
          Alcotest.test_case "clock rmap > mglru" `Quick
            test_clock_rmap_share_exceeds_mglru;
          Alcotest.test_case "thread registry" `Quick
            test_thread_registry_and_kthread_classes;
          Alcotest.test_case "journal round-trip" `Quick
            test_journal_round_trips_profile;
          Alcotest.test_case "parallel merge determinism" `Quick
            test_merge_matches_parallel_merge;
        ] );
    ]
