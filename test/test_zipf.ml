module Z = Workload.Zipf

let test_create_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Z.create ~n:0 ~exponent:1.0));
  Alcotest.check_raises "exponent"
    (Invalid_argument "Zipf.create: exponent must be positive") (fun () ->
      ignore (Z.create ~n:10 ~exponent:0.0))

let test_range () =
  let z = Z.create ~n:100 ~exponent:0.99 in
  let rng = Engine.Rng.create 4 in
  for _ = 1 to 50_000 do
    let s = Z.sample z rng in
    Alcotest.(check bool) "in [0, n)" true (s >= 0 && s < 100)
  done

let test_n1_degenerate () =
  let z = Z.create ~n:1 ~exponent:0.99 in
  let rng = Engine.Rng.create 4 in
  for _ = 1 to 100 do
    Alcotest.(check int) "always 0" 0 (Z.sample z rng)
  done

let test_probability_sums_to_one () =
  let z = Z.create ~n:500 ~exponent:0.8 in
  let sum = ref 0.0 in
  for k = 0 to 499 do
    sum := !sum +. Z.probability z k
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !sum

let test_probability_decreasing () =
  let z = Z.create ~n:100 ~exponent:1.2 in
  for k = 0 to 98 do
    Alcotest.(check bool) "monotone" true (Z.probability z k > Z.probability z (k + 1))
  done

let test_empirical_matches_exact () =
  (* Hörmann's rejection-inversion should match the exact pmf. *)
  let n = 50 in
  let z = Z.create ~n ~exponent:0.99 in
  let rng = Engine.Rng.create 21 in
  let draws = 200_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let s = Z.sample z rng in
    counts.(s) <- counts.(s) + 1
  done;
  for k = 0 to 9 do
    let expected = Z.probability z k *. float_of_int draws in
    let got = float_of_int counts.(k) in
    let rel = Float.abs (got -. expected) /. expected in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d rel err %.3f < 0.05" k rel)
      true (rel < 0.05)
  done

let test_exponent_one_special_case () =
  (* e = 1 exercises the logarithmic branch. *)
  let z = Z.create ~n:1000 ~exponent:1.0 in
  let rng = Engine.Rng.create 5 in
  let zero_hits = ref 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    if Z.sample z rng = 0 then incr zero_hits
  done;
  let expected = Z.probability z 0 *. float_of_int draws in
  Alcotest.(check bool) "head frequency" true
    (Float.abs (float_of_int !zero_hits -. expected) /. expected < 0.1)

let test_skew_increases_with_exponent () =
  let rng = Engine.Rng.create 6 in
  let head_mass e =
    let z = Z.create ~n:10_000 ~exponent:e in
    let hits = ref 0 in
    for _ = 1 to 20_000 do
      if Z.sample z rng < 10 then incr hits
    done;
    !hits
  in
  let low = head_mass 0.5 and high = head_mass 1.3 in
  Alcotest.(check bool) "higher exponent concentrates" true (high > 2 * low)

let test_shared_plan_across_domains () =
  (* The normalization constant is computed eagerly in [create], so a
     plan built in one domain can be read from pool workers with no
     lazy-initialization race.  Every domain must see the same pmf. *)
  let z = Z.create ~n:2000 ~exponent:0.9 in
  let expected =
    let s = ref 0.0 in
    for k = 0 to 1999 do s := !s +. Z.probability z k done;
    !s
  in
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      let sums =
        Engine.Pool.map pool
          (fun _ ->
            let s = ref 0.0 in
            for k = 0 to 1999 do s := !s +. Z.probability z k done;
            !s)
          (Array.init 16 (fun i -> i))
      in
      Array.iter
        (fun s ->
          Alcotest.(check (float 1e-12)) "same sum from every worker" expected s)
        sums);
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 expected

let prop_sample_in_range =
  QCheck.Test.make ~name:"samples always in range" ~count:100
    QCheck.(triple (int_range 1 10_000) (float_range 0.2 2.5) small_int)
    (fun (n, e, seed) ->
      let z = Z.create ~n ~exponent:e in
      let rng = Engine.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let s = Z.sample z rng in
        if s < 0 || s >= n then ok := false
      done;
      !ok)

let () =
  Alcotest.run "zipf"
    [
      ( "unit",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "n=1" `Quick test_n1_degenerate;
          Alcotest.test_case "pmf sums to 1" `Quick test_probability_sums_to_one;
          Alcotest.test_case "pmf decreasing" `Quick test_probability_decreasing;
          Alcotest.test_case "empirical matches exact" `Quick test_empirical_matches_exact;
          Alcotest.test_case "exponent = 1" `Quick test_exponent_one_special_case;
          Alcotest.test_case "skew grows with exponent" `Quick test_skew_increases_with_exponent;
          Alcotest.test_case "shared plan across domains" `Quick
            test_shared_plan_across_domains;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_sample_in_range ]);
    ]
