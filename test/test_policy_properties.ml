(* Property tests run against EVERY registered policy: whatever the
   replacement decisions, the memory-accounting invariants must hold. *)

module PI = Policy.Policy_intf

(* crash-test raises at construction by design; it has no replacement
   behaviour to property-test. *)
let specs =
  List.filter
    (fun s -> s <> Policy.Registry.Crash_test)
    (List.filter_map Policy.Registry.of_name Policy.Registry.known_names)

(* Replay a random sequence of page touches through the harness and
   check conservation + structural invariants at the end. *)
let replay spec ops =
  let frames = 12 and pages = 48 in
  let world = Testsupport.Harness.make_world ~frames ~pages () in
  let packed = Policy.Registry.create spec world.Testsupport.Harness.env in
  let (PI.Packed ((module P), p)) = packed in
  List.iter
    (fun (vpn, write) ->
      let vpn = vpn mod pages in
      let pte = Mem.Page_table.get world.Testsupport.Harness.pt vpn in
      if Mem.Pte.present pte then Testsupport.Harness.touch world packed ~write vpn
      else ignore (Testsupport.Harness.map_page world packed ~write vpn))
    ops;
  P.check_invariants p;
  (world, packed)

let ops_gen = QCheck.(list_of_size Gen.(5 -- 300) (pair small_nat bool))

let prop_conservation spec =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: frames conserved" (Policy.Registry.name spec))
    ~count:50 ops_gen
    (fun ops ->
      let world, _ = replay spec ops in
      let mem = world.Testsupport.Harness.mem in
      let used = Mem.Phys_mem.used_count mem in
      let resident = Testsupport.Harness.resident world in
      let mapped = Mem.Frame_table.mapped_count world.Testsupport.Harness.frames in
      used = resident && used = mapped
      && used <= Mem.Phys_mem.frames mem)

let prop_no_resident_above_capacity spec =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: residency bounded" (Policy.Registry.name spec))
    ~count:50 ops_gen
    (fun ops ->
      let world, _ = replay spec ops in
      Testsupport.Harness.resident world <= 12)

let prop_evicted_pages_become_swapped spec =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: evicted pages are swapped" (Policy.Registry.name spec))
    ~count:30 ops_gen
    (fun ops ->
      let world, _ = replay spec ops in
      (* Every page the policy reclaimed and never refaulted must be in
         swapped state; either way it must not be present AND reclaimed. *)
      List.for_all
        (fun vpn ->
          let pte = Mem.Page_table.get world.Testsupport.Harness.pt vpn in
          Mem.Pte.present pte || Mem.Pte.swapped pte)
        world.Testsupport.Harness.reclaimed_vpns)

let prop_pfn_owner_agrees spec =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: frame-table/PTE agreement" (Policy.Registry.name spec))
    ~count:30 ops_gen
    (fun ops ->
      let world, _ = replay spec ops in
      let pt = world.Testsupport.Harness.pt in
      let ok = ref true in
      for vpn = 0 to Mem.Page_table.pages pt - 1 do
        let pte = Mem.Page_table.get pt vpn in
        if Mem.Pte.present pte then begin
          match Mem.Frame_table.owner world.Testsupport.Harness.frames (Mem.Pte.pfn pte) with
          | Some (0, v) when v = vpn -> ()
          | _ -> ok := false
        end
      done;
      !ok)

(* Belady's OPT lower-bounds every online policy on a recorded script
   trace: replay the same single-threaded reference string through the
   harness (which does no readahead) and through the offline simulation
   at the harness's frame count.  No replacement decision can beat
   clairvoyance at equal capacity, so this must hold for every
   registered policy — builtin, baseline, or hook-API guest. *)
let prop_belady_lower_bound spec =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: Belady lower-bounds faults"
         (Policy.Registry.name spec))
    ~count:30 ops_gen
    (fun ops ->
      let frames = 12 and pages = 48 in
      let world = Testsupport.Harness.make_world ~frames ~pages () in
      let packed = Policy.Registry.create spec world.Testsupport.Harness.env in
      let trace = List.map (fun (vpn, _) -> vpn mod pages) ops in
      let faults = ref 0 in
      List.iter
        (fun vpn ->
          let pte = Mem.Page_table.get world.Testsupport.Harness.pt vpn in
          if Mem.Pte.present pte then
            Testsupport.Harness.touch world packed ~write:false vpn
          else begin
            incr faults;
            ignore (Testsupport.Harness.map_page world packed vpn)
          end)
        trace;
      let b =
        Policy.Belady.simulate ~capacity:frames ~trace:(Array.of_list trace)
      in
      !faults >= b.Policy.Belady.faults)

let () =
  let props =
    List.concat_map
      (fun spec ->
        [
          prop_conservation spec;
          prop_no_resident_above_capacity spec;
          prop_evicted_pages_become_swapped spec;
          prop_pfn_owner_agrees spec;
          prop_belady_lower_bound spec;
        ])
      specs
  in
  Alcotest.run "policy_properties"
    [ ("invariants", List.map QCheck_alcotest.to_alcotest props) ]
