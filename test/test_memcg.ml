(* Cgroup memory containment: spec parsing, memory.low protection,
   memory.high throttling, scoped OOM, PSI accounting, the proactive
   probe, and the determinism / byte-identity guarantees. *)

module M = Repro_core.Machine
module Mcg = Mem.Memcg
module R = Repro_core.Runner
module C = Workload.Chunk

(* ---------------- spec parsing ---------------- *)

let test_parse_basic () =
  match
    Mcg.parse_spec
      "hot:threads=0-1,max=40%;bg:threads=2+4-5,low=15%,high=200"
  with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok spec ->
    Alcotest.(check int) "two groups" 2 (List.length spec.Mcg.groups);
    let hot = List.nth spec.Mcg.groups 0 in
    Alcotest.(check string) "name" "hot" hot.Mcg.g_name;
    Alcotest.(check bool) "hot threads" true (hot.Mcg.g_threads = [ (0, 1) ]);
    Alcotest.(check bool) "hot max is 40%" true
      (match hot.Mcg.g_max with Some (Mcg.Frac f) -> abs_float (f -. 0.40) < 1e-9 | _ -> false);
    Alcotest.(check bool) "hot has no low" true (hot.Mcg.g_low = None);
    let bg = List.nth spec.Mcg.groups 1 in
    Alcotest.(check bool) "bg ranges joined with +" true
      (bg.Mcg.g_threads = [ (2, 2); (4, 5) ]);
    Alcotest.(check bool) "bg high in pages" true
      (bg.Mcg.g_high = Some (Mcg.Pages 200));
    Alcotest.(check bool) "no proactive" true (spec.Mcg.proactive = None)

let test_parse_reserved_groups () =
  match
    Mcg.parse_spec
      "a:threads=0,max=32;proactive:interval=50ms,threshold=0.2,step=2%;psi:interval=10ms"
  with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok spec ->
    Alcotest.(check int) "one ordinary group" 1 (List.length spec.Mcg.groups);
    (match spec.Mcg.proactive with
    | None -> Alcotest.fail "proactive missing"
    | Some p ->
      Alcotest.(check int) "interval 50ms" 50_000_000 p.Mcg.p_interval_ns;
      Alcotest.(check bool) "threshold" true (abs_float (p.Mcg.p_threshold -. 0.2) < 1e-9));
    Alcotest.(check int) "psi interval" 10_000_000 spec.Mcg.psi_interval_ns

let test_parse_errors () =
  let bad s =
    match Mcg.parse_spec s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "a:low=5";              (* ordinary group without threads *)
  bad "a:threads=0,zug=5";    (* unknown key *)
  bad "a:threads=5-2";        (* inverted range *)
  bad "a:threads=0;a:threads=1"; (* duplicate name *)
  bad "root:threads=0";       (* reserved name *)
  bad "a b:threads=0";        (* bad name chars *)
  bad "a:threads=0,max=abc";  (* bad amount *)
  bad "psi:threshold=0.5"     (* psi takes exactly interval= *)

let test_spec_round_trip () =
  let s = "hot:threads=0-1,max=40%;bg:threads=2-5,low=15%;proactive:interval=50ms,threshold=0.2,step=2%" in
  match Mcg.parse_spec s with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok spec ->
    let printed = Mcg.spec_to_string spec in
    (match Mcg.parse_spec printed with
    | Error msg -> Alcotest.failf "reparse failed: %s" msg
    | Ok spec2 ->
      Alcotest.(check string) "canonical form stable" printed (Mcg.spec_to_string spec2))

let test_create_rejects_overlap () =
  let spec =
    {
      Mcg.groups =
        [
          { Mcg.g_name = "a"; g_threads = [ (0, 2) ]; g_low = None; g_high = None; g_max = None };
          { Mcg.g_name = "b"; g_threads = [ (2, 3) ]; g_low = None; g_high = None; g_max = None };
        ];
      proactive = None;
      psi_interval_ns = 10_000_000;
    }
  in
  Alcotest.check_raises "overlapping tid 2"
    (Invalid_argument "cgroup b: thread 2 already assigned")
    (fun () ->
      ignore (Mcg.create spec ~capacity_frames:64 ~nthreads:4 ~footprint_pages:64))

(* ---------------- machine-level helpers ---------------- *)

let trace_workload ?(footprint = 64) lists =
  C.Packed
    ((module Workload.Trace), Workload.Trace.of_page_lists ~footprint lists)

(* One steps row per thread (of_page_lists folds everything into a
   single thread). *)
let multi_trace ?(footprint = 64) per_thread =
  let steps =
    Array.of_list
      (List.map
         (fun lists ->
           Array.of_list
             (List.map (fun pages -> C.Chunk (C.chunk (C.Pages pages))) lists))
         per_thread)
  in
  C.Packed
    ((module Workload.Trace),
     Workload.Trace.create
       {
         Workload.Trace.steps;
         footprint;
         klass = (fun _ -> Swapdev.Compress.Numeric);
         file_backed_pages = (fun _ -> false);
       })

let config ?(capacity = 16) () =
  {
    (M.default_config ~capacity_frames:capacity ~seed:7) with
    M.readahead = 0;
    kthread_jitter_ns = 0;
  }

let group name threads ?low ?high ?max () =
  { Mcg.g_name = name; g_threads = threads; g_low = low; g_high = high; g_max = max }

let spec_of ?proactive groups =
  { Mcg.groups; proactive; psi_interval_ns = 10_000_000 }

let summary_of r =
  match r.M.memcg with
  | Some s -> s
  | None -> Alcotest.fail "result carries no memcg summary"

let report_of r name =
  let s = summary_of r in
  match
    List.find_opt (fun g -> g.Mcg.r_name = name) s.Mcg.s_groups
  with
  | Some g -> g
  | None -> Alcotest.failf "no cgroup %S in summary" name

(* ---------------- memory.low protection ---------------- *)

let test_low_protects () =
  (* Thread 0 owns pages 0-7 under a full memory.low; thread 1 thrashes
     40 pages through the remaining 16 frames.  Reclaim must spare the
     protected 8. *)
  let protected_ = Array.init 8 (fun i -> i) in
  let noisy = Array.init 40 (fun i -> 8 + i) in
  let per_thread =
    [ [ protected_; protected_; protected_ ]; [ noisy; noisy; noisy ] ]
  in
  let spec =
    spec_of
      [ group "quiet" [ (0, 0) ] ~low:(Mcg.Pages 8) ();
        group "noisy" [ (1, 1) ] () ]
  in
  let cfg = { (config ~capacity:24 ()) with M.cgroups = Some spec;
              audit_every_ns = 1_000_000 } in
  let r =
    M.run cfg ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(multi_trace ~footprint:48 per_thread)
  in
  Alcotest.(check int) "invariants hold" 0 r.M.invariant_violations;
  Alcotest.(check int) "protected pages all resident" 8
    (report_of r "quiet").Mcg.r_usage;
  Alcotest.(check bool) "noisy group did the faulting" true
    (r.M.major_faults > 0)

(* ---------------- memory.high throttling ---------------- *)

(* Pin pages with permanent write failures: targeted reclaim then cannot
   push the group back under high, so every further charge stalls the
   thread with the exponential backoff. *)
let throttled_run () =
  let pages = Array.init 32 (fun i -> i) in
  let spec = spec_of [ group "app" [ (0, 0) ] ~high:(Mcg.Pages 8) () ] in
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 1.0; permanent_fraction = 1.0 }
  in
  let cfg =
    { (config ~capacity:64 ()) with
      M.cgroups = Some spec; fault_plan = plan; audit_every_ns = 1_000_000;
      obs = { Obs.trace = true; sample_every_ns = 0 } }
  in
  M.run cfg ~policy:(Policy.Registry.create Policy.Registry.Clock)
    ~workload:(trace_workload ~footprint:32 [ Array.concat [ pages; pages ] ])

let test_high_throttles () =
  let r = throttled_run () in
  let app = report_of r "app" in
  Alcotest.(check bool) "throttle episodes" true (app.Mcg.r_throttles > 0);
  Alcotest.(check bool) "throttled simulated time" true (app.Mcg.r_throttled_ns > 0);
  Alcotest.(check bool) "usage above high (pinned pages)" true
    (app.Mcg.r_usage > 8);
  Alcotest.(check int) "no OOM without memory.max" 0 app.Mcg.r_oom_kills;
  Alcotest.(check int) "invariants hold" 0 r.M.invariant_violations;
  (* Throttle stalls are memory stalls: PSI must have seen them. *)
  Alcotest.(check bool) "psi some covers the stalls" true
    (app.Mcg.r_psi_some_ns >= app.Mcg.r_throttled_ns);
  (* The trace carries matching events. *)
  match r.M.trace with
  | None -> Alcotest.fail "tracing was on"
  | Some cap ->
    let throttle_events =
      Array.to_list cap.Obs.events
      |> List.filter (fun (_, e) -> match e with Obs.Throttle _ -> true | _ -> false)
    in
    Alcotest.(check int) "one Throttle event per episode"
      app.Mcg.r_throttles (List.length throttle_events)

let test_throttle_deterministic () =
  let r1 = throttled_run () and r2 = throttled_run () in
  Alcotest.(check int) "same runtime" r1.M.runtime_ns r2.M.runtime_ns;
  Alcotest.(check string) "same memcg summary"
    (Mcg.summary_to_string (summary_of r1))
    (Mcg.summary_to_string (summary_of r2))

(* ---------------- scoped OOM ---------------- *)

(* The hot group exceeds its memory.max while writebacks pin its pages
   (partial failure keeps some swap-outs succeeding, so the victim owns
   live swap slots at kill time — the PR-1 leak this PR fixes).  The
   kill must stay inside the hot group and release every slot. *)
let scoped_oom_run () =
  let hot_pages = Array.init 40 (fun i -> i) in
  let bg_pages = Array.init 12 (fun i -> 40 + i) in
  let per_thread =
    [ [ hot_pages; hot_pages; hot_pages ]; [ bg_pages; bg_pages ] ]
  in
  let spec =
    spec_of
      [ group "hot" [ (0, 0) ] ~max:(Mcg.Pages 16) ();
        group "bg" [ (1, 1) ] () ]
  in
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 0.6; permanent_fraction = 1.0 }
  in
  let cfg =
    { (config ~capacity:40 ()) with
      M.cgroups = Some spec; fault_plan = plan; audit_every_ns = 1_000_000;
      (* no retry budget: an injected error pins the page on the spot,
         so ~60% of evictions pin and the rest produce real swap slots *)
      io_max_retries = 0 }
  in
  M.run cfg ~policy:(Policy.Registry.create Policy.Registry.Clock)
    ~workload:(multi_trace ~footprint:52 per_thread)

let test_scoped_oom_confined () =
  let r = scoped_oom_run () in
  Alcotest.(check bool) "oom fired" true (r.M.oom_kills >= 1);
  Alcotest.(check bool) "hot group took the kills" true
    ((report_of r "hot").Mcg.r_oom_kills >= 1);
  Alcotest.(check int) "bg group untouched" 0 (report_of r "bg").Mcg.r_oom_kills;
  Alcotest.(check int) "root untouched" 0 (report_of r "root").Mcg.r_oom_kills;
  Alcotest.(check bool) "bg thread ran to completion" true
    (r.M.per_thread_finish.(1) >= 0);
  Alcotest.(check bool) "hot group emptied by teardown" true
    ((report_of r "hot").Mcg.r_usage = 0)

let test_oom_releases_swap_slots () =
  (* The per-ms audit recounts swap slots (count-swap-slots) and checks
     page ownership (owner-killed) right after the kill: a victim slot
     leak or surviving rmap entry fails the run. *)
  let r = scoped_oom_run () in
  Alcotest.(check bool) "victim had swapped pages" true (r.M.swap_outs > 0);
  Alcotest.(check int) "no leaks across audits" 0 r.M.invariant_violations;
  Alcotest.(check bool) "teardown covered swapped pages" true
    (r.M.oom_discarded_pages > 0)

let test_machine_wide_oom_releases_slots () =
  (* Same leak regression without cgroups: the machine-wide killer's
     teardown must release the victim's slots too.  High write-error
     probability so pins outrun remapped retries and exhaust physical
     memory mid-run, after some writebacks (hence swap slots) landed. *)
  let big = Array.init 64 (fun i -> i) in
  let small = Array.init 8 (fun i -> 64 + i) in
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 0.6; permanent_fraction = 1.0 }
  in
  let cfg =
    { (config ~capacity:20 ()) with M.fault_plan = plan;
      audit_every_ns = 1_000_000; io_max_retries = 0 }
  in
  let r =
    M.run cfg ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:
        (multi_trace ~footprint:72
           [ [ big; big; big; big; big ]; [ small; small; small ] ])
  in
  Alcotest.(check bool) "oom fired" true (r.M.oom_kills >= 1);
  Alcotest.(check bool) "swap was in use" true (r.M.swap_outs > 0);
  Alcotest.(check int) "no slot leaks across audits" 0 r.M.invariant_violations

(* ---------------- PSI ---------------- *)

let test_psi_accounting () =
  let pages = Array.init 48 (fun i -> i) in
  let spec = spec_of [ group "app" [ (0, 0) ] () ] in
  let cfg = { (config ~capacity:16 ()) with M.cgroups = Some spec } in
  let r =
    M.run cfg ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(trace_workload ~footprint:48 [ Array.concat [ pages; pages; pages ] ])
  in
  let s = summary_of r in
  let app = report_of r "app" in
  Alcotest.(check bool) "thrash stalled the thread" true (app.Mcg.r_psi_some_ns > 0);
  Alcotest.(check bool) "full <= some" true
    (app.Mcg.r_psi_full_ns <= app.Mcg.r_psi_some_ns);
  Alcotest.(check bool) "some bounded by runtime" true
    (app.Mcg.r_psi_some_ns <= r.M.runtime_ns);
  (* One thread in the group: every some-stall is a full-stall. *)
  Alcotest.(check int) "single thread: full = some"
    app.Mcg.r_psi_some_ns app.Mcg.r_psi_full_ns;
  Alcotest.(check bool) "machine-wide tracker agrees" true
    (s.Mcg.s_some_ns > 0 && s.Mcg.s_some_ns <= r.M.runtime_ns)

(* ---------------- proactive probe ---------------- *)

let psi_events r name =
  match r.M.trace with
  | None -> []
  | Some cap ->
    Array.to_list cap.Obs.events
    |> List.filter_map (fun (_, e) ->
           match e with
           | Obs.Psi { cg; some_ns; limit; _ } when cg = name ->
             Some (some_ns, limit)
           | _ -> None)

let test_proactive_tightens () =
  (* Threshold 1.0 can never be exceeded, so the probe tightens every
     tick: effective limits must be non-increasing, and squeezing the
     working set must surface PSI pressure that was absent before. *)
  let pages = Array.init 24 (fun i -> i) in
  let many = Array.concat (List.init 200 (fun _ -> pages)) in
  let spec =
    { (spec_of [ group "app" [ (0, 0) ] () ]) with
      Mcg.proactive =
        Some { Mcg.p_interval_ns = 100_000; p_threshold = 1.0;
               p_step = Mcg.Pages 1 };
      psi_interval_ns = 50_000 }
  in
  let cfg =
    { (config ~capacity:64 ()) with
      M.swap = M.zram;
      cgroups = Some spec;
      obs = { Obs.trace = true; sample_every_ns = 0 } }
  in
  let r =
    M.run cfg ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(trace_workload ~footprint:24 [ many ])
  in
  let ticks = psi_events r "app" in
  Alcotest.(check bool) "probe ticked" true (List.length ticks > 4);
  let limits = List.filter_map (fun (_, l) -> if l >= 0 then Some l else None) ticks in
  Alcotest.(check bool) "probe engaged" true (limits <> []);
  (* Not strictly monotone: a fully-stalled window backs the limit off
     by 2*step before tightening resumes.  But the squeeze must land
     and hold below the 24-page working set (probe floor is 16). *)
  Alcotest.(check bool) "limit squeezed below the working set" true
    (List.fold_left min max_int limits < 24);
  Alcotest.(check bool) "net tightening over the run" true
    (match (limits, List.rev limits) with
    | first :: _, last :: _ -> last <= first
    | _ -> false);
  (* PSI some rises as the probe tightens: the later half of the run
     carries more stall time than the earlier half. *)
  let somes = List.map fst ticks in
  let n = List.length somes in
  let first = List.filteri (fun i _ -> i < n / 2) somes in
  let second = List.filteri (fun i _ -> i >= n / 2) somes in
  let sum = List.fold_left ( + ) 0 in
  Alcotest.(check bool) "pressure rises as the probe tightens" true
    (sum second > sum first)

(* ---------------- jobs=1 vs jobs=4 byte-identity ---------------- *)

let fast_profile = { R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_parallel_identical () =
  let spec =
    match Mcg.parse_spec
            "app:threads=0-1,high=20%;bg:threads=2-3,low=10%;proactive:interval=100ms,threshold=0.3,step=1%"
    with
    | Ok s -> s
    | Error msg -> Alcotest.failf "spec: %s" msg
  in
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 0.3; permanent_fraction = 0.5 }
  in
  let obs = { Obs.trace = true; sample_every_ns = 100_000_000 } in
  let run jobs =
    let ctx =
      R.make_ctx ~profile:fast_profile ~fault_plan:plan ~jobs ~obs ~cgroups:spec ()
    in
    let results =
      R.run_cell ctx ~workload:(R.Ycsb Workload.Ycsb.A)
        ~policy:Policy.Registry.Clock ~ratio:0.7 ~swap:R.Ssd
    in
    let trace = Filename.temp_file "memcg" ".jsonl" in
    let samples = Filename.temp_file "memcg" ".csv" in
    ignore (R.write_trace ctx ~path:trace);
    ignore (R.write_samples ctx ~path:samples);
    let t = read_file trace and s = read_file samples in
    Sys.remove trace;
    Sys.remove samples;
    (results, t, s)
  in
  let r1, t1, s1 = run 1 in
  let r4, t4, s4 = run 4 in
  List.iter2
    (fun (a : M.result) (b : M.result) ->
      Alcotest.(check int) "same runtime" a.M.runtime_ns b.M.runtime_ns;
      Alcotest.(check string) "same memcg summary"
        (Mcg.summary_to_string (summary_of a))
        (Mcg.summary_to_string (summary_of b)))
    r1 r4;
  Alcotest.(check bool) "throttling actually exercised" true
    (List.exists (fun r -> (report_of r "app").Mcg.r_throttles > 0) r1);
  Alcotest.(check string) "trace bytes identical" t1 t4;
  Alcotest.(check string) "PSI sample bytes identical" s1 s4;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "samples carry psi series" true (contains s1 "psi.some_ns")

(* ---------------- summary round-trip ---------------- *)

let test_summary_round_trip () =
  let r = throttled_run () in
  let s = summary_of r in
  let enc = Mcg.summary_to_string s in
  match Mcg.summary_of_string enc with
  | None -> Alcotest.fail "decode failed"
  | Some s2 ->
    Alcotest.(check string) "re-encode identical" enc (Mcg.summary_to_string s2);
    Alcotest.(check int) "groups preserved"
      (List.length s.Mcg.s_groups) (List.length s2.Mcg.s_groups);
    let app = List.find (fun g -> g.Mcg.r_name = "app") s2.Mcg.s_groups in
    Alcotest.(check bool) "latencies bit-exact" true
      (app.Mcg.r_read_latencies
      = (List.find (fun g -> g.Mcg.r_name = "app") s.Mcg.s_groups).Mcg.r_read_latencies)

(* ---------------- multi-tenant fleet containment ---------------- *)

let small_ycsb ~seed ~zipf ~requests =
  let config =
    { Workload.Ycsb.default_config with
      Workload.Ycsb.items = 1_600; requests; threads = 2; zipf_exponent = zipf }
  in
  C.Packed
    ((module Workload.Ycsb),
     Workload.Ycsb.create ~config ~variant:Workload.Ycsb.A
       ~rng:(Engine.Rng.create seed) ())

let test_fleet_confines_runaway () =
  (* Two tenants under Fleet.default_spec: the hot one (tenant 0,
     threads 0-1) runs away against its 40% memory.max while pinned
     pages defeat its targeted reclaim; the neighbour must finish
     unharmed, with its latency tail intact. *)
  let m =
    Workload.Multi.create
      [ small_ycsb ~seed:11 ~zipf:1.1 ~requests:12_000;
        small_ycsb ~seed:23 ~zipf:0.8 ~requests:6_000 ]
  in
  let spec = Repro_core.Fleet.default_spec ~tenants:2 ~hot:0 in
  let plan =
    { Swapdev.Faulty_device.none with
      Swapdev.Faulty_device.write_error_prob = 0.7; permanent_fraction = 1.0 }
  in
  let cfg =
    { (config ~capacity:260 ()) with
      M.cgroups = Some spec; fault_plan = plan; audit_every_ns = 1_000_000;
      barrier_groups = Some (Workload.Multi.barrier_groups m) }
  in
  let r =
    M.run cfg ~policy:(Policy.Registry.create Policy.Registry.Clock)
      ~workload:(C.Packed ((module Workload.Multi), m))
  in
  let hot = report_of r "hot" and bg = report_of r "tenant1" in
  Alcotest.(check bool) "hot tenant OOM-killed" true (hot.Mcg.r_oom_kills >= 1);
  Alcotest.(check int) "neighbour spared" 0 bg.Mcg.r_oom_kills;
  Alcotest.(check bool) "neighbour threads finished" true
    (r.M.per_thread_finish.(2) >= 0 && r.M.per_thread_finish.(3) >= 0);
  Alcotest.(check bool) "neighbour latencies recorded" true
    (Array.length bg.Mcg.r_read_latencies > 0);
  Alcotest.(check bool) "neighbour p99 bounded by device latency" true
    (Stats.Percentile.quantile bg.Mcg.r_read_latencies 0.99 < 1e9);
  Alcotest.(check int) "invariants hold" 0 r.M.invariant_violations

let test_fleet_workload_shape () =
  let ctx = R.make_ctx ~profile:fast_profile () in
  let kind = R.Fleet { fl_tenants = 3; fl_hot = 1 } in
  Alcotest.(check string) "kind name" "fleet3-h1" (R.workload_kind_name kind);
  let w = R.make_workload ctx kind ~trial:0 in
  Alcotest.(check int) "two threads per tenant" 6 (C.packed_threads w);
  Alcotest.(check bool) "footprint covers all tenants" true
    (C.packed_footprint w > 3 * 3_000)

let () =
  Alcotest.run "memcg"
    [
      ( "spec",
        [
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "parse reserved groups" `Quick test_parse_reserved_groups;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "round trip" `Quick test_spec_round_trip;
          Alcotest.test_case "create rejects overlap" `Quick test_create_rejects_overlap;
        ] );
      ( "containment",
        [
          Alcotest.test_case "memory.low protects" `Quick test_low_protects;
          Alcotest.test_case "memory.high throttles" `Quick test_high_throttles;
          Alcotest.test_case "throttling deterministic" `Quick test_throttle_deterministic;
          Alcotest.test_case "scoped oom confined" `Quick test_scoped_oom_confined;
          Alcotest.test_case "oom releases swap slots" `Quick test_oom_releases_swap_slots;
          Alcotest.test_case "machine-wide oom releases slots" `Quick
            test_machine_wide_oom_releases_slots;
        ] );
      ( "psi",
        [
          Alcotest.test_case "psi accounting" `Quick test_psi_accounting;
          Alcotest.test_case "proactive probe tightens" `Quick test_proactive_tightens;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 = jobs 4" `Slow test_parallel_identical;
          Alcotest.test_case "summary round trip" `Quick test_summary_round_trip;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "runaway confined" `Slow test_fleet_confines_runaway;
          Alcotest.test_case "workload shape" `Quick test_fleet_workload_shape;
        ] );
    ]
