(* Serial/parallel equivalence: the acceptance property of the parallel
   engine.  A jobs=4 context must produce Machine.result aggregates,
   figure stdout and exported CSV bytes identical to a jobs=1 context —
   with and without fault injection. *)

module R = Repro_core.Runner

let fast_profile = { R.trials = 2; ycsb_trials = 1; fast = true; scale = 1 }

let serial_ctx () = R.make_ctx ~profile:fast_profile ~jobs:1 ()

let parallel_ctx () = R.make_ctx ~profile:fast_profile ~jobs:4 ()

let result_fingerprint (r : Repro_core.Machine.result) =
  ( r.Repro_core.Machine.runtime_ns,
    r.Repro_core.Machine.major_faults,
    r.Repro_core.Machine.minor_faults,
    r.Repro_core.Machine.swap_ins,
    r.Repro_core.Machine.swap_outs,
    r.Repro_core.Machine.direct_reclaims )

let check_cell_equal name c_serial c_parallel ~workload ~policy ~ratio ~swap =
  let rs = R.run_cell c_serial ~workload ~policy ~ratio ~swap in
  let rp = R.run_cell c_parallel ~workload ~policy ~ratio ~swap in
  Alcotest.(check int) (name ^ ": trial count") (List.length rs) (List.length rp);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (name ^ ": identical trial results")
        true
        (result_fingerprint a = result_fingerprint b
        && a.Repro_core.Machine.read_latencies = b.Repro_core.Machine.read_latencies
        && a.Repro_core.Machine.policy_stats = b.Repro_core.Machine.policy_stats))
    rs rp

let test_cells_identical () =
  let cs = serial_ctx () and cp = parallel_ctx () in
  check_cell_equal "tpch/mglru/ssd" cs cp ~workload:R.Tpch
    ~policy:Policy.Registry.Mglru_default ~ratio:0.5 ~swap:R.Ssd;
  check_cell_equal "pagerank/clock/zram" cs cp ~workload:R.Pagerank
    ~policy:Policy.Registry.Clock ~ratio:0.75 ~swap:R.Zram;
  check_cell_equal "ycsb-b/scan-none/ssd" cs cp
    ~workload:(R.Ycsb Workload.Ycsb.B) ~policy:Policy.Registry.Scan_none
    ~ratio:0.5 ~swap:R.Ssd

let test_cells_identical_under_faults () =
  let plan = Swapdev.Faulty_device.light in
  let cs = R.make_ctx ~profile:fast_profile ~fault_plan:plan ~jobs:1 () in
  let cp = R.make_ctx ~profile:fast_profile ~fault_plan:plan ~jobs:4 () in
  check_cell_equal "tpch/mglru/ssd+faults" cs cp ~workload:R.Tpch
    ~policy:Policy.Registry.Mglru_default ~ratio:0.5 ~swap:R.Ssd;
  check_cell_equal "pagerank/clock/ssd+faults" cs cp ~workload:R.Pagerank
    ~policy:Policy.Registry.Clock ~ratio:0.5 ~swap:R.Ssd

(* Stdout capture via a temp-file redirect (same trick as test_report). *)
let capture f =
  let path = Filename.temp_file "parallel" ".txt" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let inc = open_in path in
  let n = in_channel_length inc in
  let s = really_input_string inc n in
  close_in inc;
  Sys.remove path;
  s

let test_figure_output_identical () =
  let out_serial = capture (fun () -> Repro_core.Figures.run (serial_ctx ()) 1) in
  let out_parallel = capture (fun () -> Repro_core.Figures.run (parallel_ctx ()) 1) in
  Alcotest.(check bool) "figure 1 printed something" true
    (String.length out_serial > 0);
  Alcotest.(check string) "fig1 stdout byte-identical" out_serial out_parallel

let read_file path =
  let inc = open_in_bin path in
  let n = in_channel_length inc in
  let s = really_input_string inc n in
  close_in inc;
  s

let test_csv_bytes_identical () =
  let export ctx =
    let path = Filename.temp_file "fig1" ".csv" in
    Repro_core.Csv_export.norm_file ctx ~path
      ~metric:(fun c -> c.Repro_core.Figures.perf)
      ~base_policy:Policy.Registry.Clock ~ratio:0.5 ~swap:R.Ssd;
    let bytes = read_file path in
    Sys.remove path;
    bytes
  in
  let b_serial = export (serial_ctx ()) in
  let b_parallel = export (parallel_ctx ()) in
  Alcotest.(check bool) "csv non-empty" true (String.length b_serial > 0);
  Alcotest.(check string) "csv byte-identical" b_serial b_parallel

let test_prefetch_fills_cache () =
  let ctx = parallel_ctx () in
  let exps =
    List.concat_map
      (fun policy ->
        R.cell_exps ctx ~workload:R.Tpch ~policy ~ratio:0.5 ~swap:R.Ssd)
      Policy.Registry.[ Clock; Mglru_default; Scan_none ]
  in
  R.prefetch ctx exps;
  Alcotest.(check int) "all trials memoized" (List.length exps)
    (R.cached_results ctx);
  (* Read-back must not recompute: physical equality with the cache. *)
  List.iter
    (fun e ->
      let r1 = R.run_exp ctx e in
      let r2 = R.run_exp ctx e in
      Alcotest.(check bool) "served from cache" true (r1 == r2))
    exps

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "cells identical" `Slow test_cells_identical;
          Alcotest.test_case "cells identical under faults" `Slow
            test_cells_identical_under_faults;
          Alcotest.test_case "figure stdout identical" `Slow
            test_figure_output_identical;
          Alcotest.test_case "csv bytes identical" `Slow test_csv_bytes_identical;
          Alcotest.test_case "prefetch fills cache" `Slow test_prefetch_fills_cache;
        ] );
    ]
