(* Domain-pool unit tests: ordering, exception determinism, the jobs=1
   degenerate case, reuse across batches, and actual parallel speedup. *)

module P = Engine.Pool

let test_map_ordering () =
  (* Jittered task durations so completion order differs from input
     order; results must still come back in input order. *)
  P.with_pool ~jobs:4 (fun pool ->
      let inputs = Array.init 64 (fun i -> i) in
      let out =
        P.map pool
          (fun i ->
            if i land 3 = 0 then Unix.sleepf 0.002;
            i * i)
          inputs
      in
      Alcotest.(check (array int)) "squares in order"
        (Array.init 64 (fun i -> i * i))
        out)

let test_map_list_ordering () =
  P.with_pool ~jobs:3 (fun pool ->
      let out = P.map_list pool (fun s -> s ^ "!") [ "a"; "b"; "c"; "d" ] in
      Alcotest.(check (list string)) "in order" [ "a!"; "b!"; "c!"; "d!" ] out)

let test_jobs_one_degenerate () =
  let pool = P.create ~jobs:1 in
  Alcotest.(check int) "one job" 1 (P.jobs pool);
  let seen = ref [] in
  let out = P.map_list pool (fun i -> seen := i :: !seen; i + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] out;
  (* Serial execution visits tasks in order in the calling domain. *)
  Alcotest.(check (list int)) "executed in order" [ 3; 2; 1 ] !seen;
  P.shutdown pool

let test_jobs_clamped () =
  let pool = P.create ~jobs:(-3) in
  Alcotest.(check int) "clamped to 1" 1 (P.jobs pool);
  P.shutdown pool;
  Alcotest.(check bool) "default jobs sane" true (P.default_jobs () >= 1)

let test_lowest_index_exception () =
  (* Several tasks fail; the re-raised exception must be the one from
     the lowest-indexed failing task, every time. *)
  P.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 5 do
        match
          P.map pool
            (fun i ->
              if i = 3 then failwith "task 3";
              if i = 7 then failwith "task 7";
              if i = 11 then invalid_arg "task 11";
              i)
            (Array.init 16 (fun i -> i))
        with
        | _ -> Alcotest.fail "batch should have raised"
        | exception Failure msg ->
          Alcotest.(check string) "lowest-indexed failure wins" "task 3" msg
      done)

let test_exception_leaves_pool_usable () =
  P.with_pool ~jobs:2 (fun pool ->
      (match P.run pool [ (fun () -> failwith "boom") ] with
      | _ -> Alcotest.fail "should raise"
      | exception Failure _ -> ());
      let out = P.map_list pool (fun i -> i * 2) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "next batch fine" [ 2; 4; 6 ] out)

let test_reuse_across_batches () =
  P.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 10 do
        let out = P.map_list pool (fun i -> i + round) [ 1; 2; 3; 4; 5 ] in
        Alcotest.(check (list int))
          "round results"
          (List.map (fun i -> i + round) [ 1; 2; 3; 4; 5 ])
          out
      done)

let test_empty_and_singleton () =
  P.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (P.map_list pool (fun i -> i) []);
      Alcotest.(check (list int)) "singleton" [ 9 ]
        (P.map_list pool (fun i -> i + 1) [ 8 ]))

let test_map_supervised_isolates_failures () =
  (* Supervised batches never raise: each failing task becomes an
     [Error] outcome at its own index and every other task still runs. *)
  P.with_pool ~jobs:4 (fun pool ->
      let out =
        P.map_supervised pool
          (fun i ->
            if i mod 5 = 3 then failwith (Printf.sprintf "task %d" i);
            i * 10)
          (Array.init 20 (fun i -> i))
      in
      Alcotest.(check int) "one outcome per task" 20 (Array.length out);
      Array.iteri
        (fun i o ->
          match o with
          | P.Ok v when i mod 5 <> 3 ->
            Alcotest.(check int) "successful task value" (i * 10) v
          | P.Error { exn = Failure msg; _ } when i mod 5 = 3 ->
            Alcotest.(check string) "failure matches its own index"
              (Printf.sprintf "task %d" i)
              msg
          | _ -> Alcotest.failf "outcome %d has the wrong shape" i)
        out)

let test_run_supervised_never_raises () =
  P.with_pool ~jobs:2 (fun pool ->
      let out =
        P.run_supervised pool
          [
            (fun () -> 1);
            (fun () -> invalid_arg "middle");
            (fun () -> 3);
          ]
      in
      match out with
      | [ P.Ok 1; P.Error { exn = Invalid_argument _; _ }; P.Ok 3 ] -> ()
      | _ -> Alcotest.fail "expected Ok/Error/Ok in order")

let test_supervised_backtrace_captured () =
  P.with_pool ~jobs:1 (fun pool ->
      match P.run_supervised pool [ (fun () -> failwith "bt") ] with
      | [ P.Error { backtrace; _ } ] ->
        (* The backtrace is captured per task; it may be empty when the
           runtime has backtraces off, but the value must be usable. *)
        ignore (Printexc.raw_backtrace_to_string backtrace)
      | _ -> Alcotest.fail "expected a single Error outcome")

let test_supervised_pool_reusable () =
  (* Failures in a supervised batch must not poison later batches,
     supervised or not. *)
  P.with_pool ~jobs:3 (fun pool ->
      ignore
        (P.map_supervised pool (fun _ -> failwith "all fail") (Array.make 6 ()));
      let out = P.map_list pool (fun i -> i + 1) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "next batch fine" [ 2; 3; 4 ] out)

let test_speedup () =
  (* Eight 50 ms sleeps: serial floor 0.4 s, four domains ~0.1 s.
     sleepf does not contend the CPU, so >2x holds even on loaded CI
     as long as the machine has >= 4 cores. *)
  if Domain.recommended_domain_count () < 4 then ()
  else begin
    let tasks = List.init 8 (fun i -> i) in
    let time jobs =
      P.with_pool ~jobs (fun pool ->
          let t0 = Unix.gettimeofday () in
          ignore (P.map_list pool (fun _ -> Unix.sleepf 0.05) tasks);
          Unix.gettimeofday () -. t0)
    in
    let serial = time 1 in
    let parallel = time 4 in
    Alcotest.(check bool)
      (Printf.sprintf "serial %.3fs / parallel %.3fs > 2x" serial parallel)
      true
      (serial > 2.0 *. parallel)
  end

let () =
  Alcotest.run "pool"
    [
      ( "unit",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "map_list ordering" `Quick test_map_list_ordering;
          Alcotest.test_case "jobs=1 degenerate" `Quick test_jobs_one_degenerate;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "lowest-index exception" `Quick test_lowest_index_exception;
          Alcotest.test_case "usable after exception" `Quick test_exception_leaves_pool_usable;
          Alcotest.test_case "reuse across batches" `Quick test_reuse_across_batches;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "supervised isolates failures" `Quick
            test_map_supervised_isolates_failures;
          Alcotest.test_case "run_supervised never raises" `Quick
            test_run_supervised_never_raises;
          Alcotest.test_case "supervised backtrace" `Quick
            test_supervised_backtrace_captured;
          Alcotest.test_case "supervised pool reusable" `Quick
            test_supervised_pool_reusable;
          Alcotest.test_case "speedup" `Slow test_speedup;
        ] );
    ]
