module R = Policy.Registry

let test_name_roundtrip () =
  List.iter
    (fun name ->
      match R.of_name name with
      | Some spec -> Alcotest.(check string) name name (R.name spec)
      | None -> Alcotest.fail (name ^ " should parse"))
    R.known_names

let test_unknown_name () =
  Alcotest.(check bool) "unknown" true (R.of_name "nonsense" = None)

let test_paper_specs () =
  Alcotest.(check int) "six configurations" 6 (List.length R.all_paper_specs);
  Alcotest.(check (list string)) "figure order"
    [ "clock"; "mglru"; "gen14"; "scan-all"; "scan-none"; "scan-rand" ]
    (List.map R.name R.all_paper_specs)

let test_create_all_known () =
  List.iter
    (fun name ->
      let spec = Option.get (R.of_name name) in
      let world = Testsupport.Harness.make_world () in
      if spec = R.Crash_test then
        (* The fault-isolation probe must fail at construction, before
           it can touch any machine state. *)
        match R.create spec world.Testsupport.Harness.env with
        | _ -> Alcotest.fail "crash-test should raise at construction"
        | exception Failure _ -> ()
      else begin
        let packed = R.create spec world.Testsupport.Harness.env in
        (* Each constructed policy can absorb a page. *)
        ignore (Testsupport.Harness.map_page world packed 0);
        Alcotest.(check bool) (name ^ " works") true
          (String.length (Policy.Policy_intf.packed_name packed) > 0)
      end)
    R.known_names

let test_scan_rand_parses_with_half () =
  match R.of_name "scan-rand" with
  | Some (R.Scan_rand p) -> Alcotest.(check (float 1e-9)) "p" 0.5 p
  | _ -> Alcotest.fail "expected Scan_rand"

(* Every registry policy must expose sampler gauges: non-empty, finite,
   identifier-like stable names — the machine prefixes them "policy.*"
   and the samples CSV depends on the names never churning. *)
let gauges_of (Policy.Policy_intf.Packed ((module P), p)) = P.gauges p

let metric_name_ok k =
  k <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.')
       k

let test_gauges_all_policies () =
  List.iter
    (fun name ->
      let spec = Option.get (R.of_name name) in
      if spec <> R.Crash_test then begin
        let world = Testsupport.Harness.make_world ~frames:32 ~pages:128 () in
        let packed = R.create spec world.Testsupport.Harness.env in
        (* Pressure the policy well past capacity so eviction state and
           counters are live, then let its kthreads settle. *)
        for vpn = 0 to 95 do
          ignore (Testsupport.Harness.map_page world packed vpn);
          Testsupport.Harness.advance world 1_000
        done;
        Testsupport.Harness.run_kthreads world packed;
        let g = gauges_of packed in
        Alcotest.(check bool) (name ^ ": gauges non-empty") true (g <> []);
        List.iter
          (fun (k, v) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s.%s: identifier-like name" name k)
              true (metric_name_ok k);
            Alcotest.(check bool)
              (Printf.sprintf "%s.%s: finite" name k)
              true
              (Float.is_finite v))
          g;
        Alcotest.(check int)
          (name ^ ": no duplicate metric names")
          (List.length g)
          (List.length (List.sort_uniq compare (List.map fst g)));
        (* Names are stable call-to-call: the sampler emits a consistent
           schema over a trial's lifetime. *)
        Alcotest.(check (list string))
          (name ^ ": stable names")
          (List.map fst g)
          (List.map fst (gauges_of packed))
      end)
    R.known_names

(* ------------------------------------------------------------------ *)
(* Versioned descriptors and nearest-match suggestion                  *)

let find_descriptor n = List.find (fun d -> d.R.d_name = n) R.descriptors

let test_descriptors () =
  Alcotest.(check int) "one per runnable name plus belady"
    (List.length R.known_names + 1)
    (List.length R.descriptors);
  let names = List.map (fun d -> d.R.d_name) R.descriptors in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun d ->
      Alcotest.(check bool) (d.R.d_name ^ ": doc non-empty") true
        (String.length d.R.d_doc > 0))
    R.descriptors;
  Alcotest.(check bool) "clock is builtin" true
    ((find_descriptor "clock").R.d_kind = R.Builtin);
  Alcotest.(check bool) "belady is oracle" true
    ((find_descriptor "belady").R.d_kind = R.Oracle);
  List.iter
    (fun spec ->
      let d = find_descriptor (R.name spec) in
      Alcotest.(check bool)
        (R.name spec ^ ": guest at current hook version")
        true
        (d.R.d_kind = R.Guest Policy.Hooks.current_version))
    R.guest_specs;
  Alcotest.(check string) "kind labels: builtin" "builtin" (R.kind_label R.Builtin);
  Alcotest.(check string) "kind labels: guest" "guest/v1"
    (R.kind_label (R.Guest 1));
  Alcotest.(check string) "kind labels: oracle" "oracle" (R.kind_label R.Oracle)

let test_guest_specs () =
  Alcotest.(check (list string)) "scoreboard order"
    [ "s3-fifo"; "sieve"; "perceptron" ]
    (List.map R.name R.guest_specs)

let test_suggest () =
  Alcotest.(check (option string)) "clok -> clock" (Some "clock")
    (R.suggest "clok");
  Alcotest.(check (option string)) "s3fifo -> s3-fifo" (Some "s3-fifo")
    (R.suggest "s3fifo");
  Alcotest.(check (option string)) "case folded" (Some "sieve")
    (R.suggest "SIEVE");
  Alcotest.(check (option string)) "oracle suggested too" (Some "belady")
    (R.suggest "beladi");
  Alcotest.(check (option string)) "gibberish: no suggestion" None
    (R.suggest "zzzzzzzzzzzz")

let test_custom_config () =
  let config = { Policy.Mglru.default_config with Policy.Mglru.max_gens = 8 } in
  let world = Testsupport.Harness.make_world () in
  let packed = R.create (R.Mglru_custom config) world.Testsupport.Harness.env in
  Alcotest.(check string) "mglru under the hood" "mglru"
    (Policy.Policy_intf.packed_name packed)

let () =
  Alcotest.run "registry"
    [
      ( "unit",
        [
          Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "unknown name" `Quick test_unknown_name;
          Alcotest.test_case "paper specs" `Quick test_paper_specs;
          Alcotest.test_case "create all" `Quick test_create_all_known;
          Alcotest.test_case "scan-rand default" `Quick test_scan_rand_parses_with_half;
          Alcotest.test_case "gauges for every policy" `Quick
            test_gauges_all_policies;
          Alcotest.test_case "custom config" `Quick test_custom_config;
          Alcotest.test_case "versioned descriptors" `Quick test_descriptors;
          Alcotest.test_case "guest specs" `Quick test_guest_specs;
          Alcotest.test_case "nearest-match suggestions" `Quick test_suggest;
        ] );
    ]
